package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Problem is one lint finding in a Prometheus text exposition.
type Problem struct {
	Line int // 1-based line number (0 when the problem is family-level)
	Msg  string
}

func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
	}
	return p.Msg
}

// lintFamily tracks what the linter has seen of one metric family.
type lintFamily struct {
	name     string
	helpLine int
	typeLine int
	typ      string
	samples  int
	closed   bool // a different family's samples appeared after this one
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+\S+)?$`)

// LintPrometheus checks a Prometheus text exposition (version 0.0.4) for
// the conventions the repo enforces:
//
//   - every family has non-empty HELP and a TYPE, declared before samples;
//   - family and label names match the Prometheus charset, counters end in
//     _total, gauges and histograms do not;
//   - histogram samples are only _bucket/_sum/_count, buckets carry le
//     labels, are cumulative, and include +Inf;
//   - no duplicate HELP/TYPE lines, no duplicate samples, families are
//     contiguous.
//
// The returned problems are empty for a clean exposition; err reports a
// read failure, not a lint finding.
func LintPrometheus(r io.Reader) ([]Problem, error) {
	var problems []Problem
	addf := func(line int, format string, args ...any) {
		problems = append(problems, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	families := make(map[string]*lintFamily)
	famOrder := []string{}
	fam := func(name string) *lintFamily {
		f, ok := families[name]
		if !ok {
			f = &lintFamily{name: name}
			families[name] = f
			famOrder = append(famOrder, name)
		}
		return f
	}
	// bucketState tracks per-child histogram bucket series for cumulative
	// and +Inf checks: family+labels(without le) → ordered (le, value).
	type bucketSeries struct {
		line     int
		n        int
		sawInf   bool
		lastLe   float64
		lastVal  float64
		brokeCum bool
		brokeLe  bool
	}
	buckets := make(map[string]*bucketSeries)
	seenSamples := make(map[string]int) // full sample identity → line
	var current string                  // family whose samples are streaming

	metricNameRe := regexp.MustCompile(`^[a-z_:][a-z0-9_:]*$`)
	labelNameRe := regexp.MustCompile(`^[a-z_][a-zA-Z0-9_]*$`)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := fam(name)
			if f.helpLine != 0 {
				addf(lineNo, "duplicate HELP for family %s (first at line %d)", name, f.helpLine)
			}
			f.helpLine = lineNo
			if strings.TrimSpace(help) == "" {
				addf(lineNo, "family %s has empty help text", name)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			f := fam(name)
			if f.typeLine != 0 {
				addf(lineNo, "duplicate TYPE for family %s (first at line %d)", name, f.typeLine)
			}
			f.typeLine = lineNo
			f.typ = strings.TrimSpace(typ)
			switch f.typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				addf(lineNo, "family %s has unknown type %q", name, f.typ)
			}
			if f.samples > 0 {
				addf(lineNo, "TYPE for family %s appears after its samples", name)
			}
			if !metricNameRe.MatchString(name) {
				addf(lineNo, "bad metric family name %q", name)
			}
			switch {
			case f.typ == "counter" && !strings.HasSuffix(name, "_total"):
				addf(lineNo, "counter %s must end in _total", name)
			case (f.typ == "gauge" || f.typ == "histogram") && strings.HasSuffix(name, "_total"):
				addf(lineNo, "%s %s must not end in _total", f.typ, name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			addf(lineNo, "unparseable sample line %q", line)
			continue
		}
		sample, labels, valueStr := m[1], m[2], m[3]
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			addf(lineNo, "sample %s has unparseable value %q", sample, valueStr)
		}

		// Resolve the owning family: histogram/summary samples use suffixed
		// names.
		famName := sample
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample, s)
			if base != sample {
				if bf, ok := families[base]; ok && (bf.typ == "histogram" || bf.typ == "summary") {
					famName, suffix = base, s
				}
				break
			}
		}
		f, declared := families[famName]
		if !declared {
			addf(lineNo, "sample %s has no preceding HELP/TYPE for family %s", sample, famName)
			f = fam(famName)
		}
		if current != famName {
			if current != "" {
				families[current].closed = true
			}
			if f.closed {
				addf(lineNo, "family %s is not contiguous (samples resume after another family)", famName)
			}
			current = famName
		}
		f.samples++

		if key := sample + labels; true {
			if first, dup := seenSamples[key]; dup {
				addf(lineNo, "duplicate sample %s%s (first at line %d)", sample, labels, first)
			} else {
				seenSamples[key] = lineNo
			}
		}

		labelMap := parseLabels(labels)
		for k := range labelMap {
			if !labelNameRe.MatchString(k) {
				addf(lineNo, "sample %s has bad label name %q", sample, k)
			}
		}

		if f.typ == "histogram" {
			switch suffix {
			case "_bucket":
				le, ok := labelMap["le"]
				if !ok {
					addf(lineNo, "histogram bucket %s%s lacks an le label", sample, labels)
					break
				}
				childKey := famName + stripLabel(labels, "le")
				bs := buckets[childKey]
				if bs == nil {
					bs = &bucketSeries{line: lineNo}
					buckets[childKey] = bs
				}
				if le == "+Inf" {
					bs.sawInf = true
				}
				leVal, leErr := strconv.ParseFloat(le, 64)
				if leErr != nil {
					addf(lineNo, "histogram bucket %s has unparseable le %q", sample, le)
				} else {
					if bs.n > 0 && leVal <= bs.lastLe && !bs.brokeLe {
						addf(lineNo, "histogram %s bucket le values are not ascending", famName)
						bs.brokeLe = true
					}
					bs.lastLe = leVal
				}
				if bs.n > 0 && value < bs.lastVal && !bs.brokeCum {
					addf(lineNo, "histogram %s buckets are not cumulative", famName)
					bs.brokeCum = true
				}
				bs.n++
				bs.lastVal = value
			case "_sum", "_count":
			default:
				addf(lineNo, "histogram family %s has non-histogram sample %s", famName, sample)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return problems, err
	}

	for key, bs := range buckets {
		if !bs.sawInf {
			problems = append(problems, Problem{Line: bs.line, Msg: fmt.Sprintf("histogram series %s lacks a +Inf bucket", key)})
		}
	}
	sort.Strings(famOrder)
	for _, name := range famOrder {
		f := families[name]
		if f.helpLine == 0 {
			problems = append(problems, Problem{Msg: fmt.Sprintf("family %s has no HELP text", name)})
		}
		if f.typeLine == 0 {
			problems = append(problems, Problem{Msg: fmt.Sprintf("family %s has no TYPE", name)})
		}
	}
	sort.SliceStable(problems, func(i, j int) bool { return problems[i].Line < problems[j].Line })
	return problems, nil
}

// parseLabels parses a `{k="v",...}` block into a map (values unescaped
// only as far as the linter needs — quotes stripped).
func parseLabels(block string) map[string]string {
	out := map[string]string{}
	block = strings.TrimPrefix(strings.TrimSuffix(block, "}"), "{")
	for _, part := range splitLabels(block) {
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		out[k] = strings.Trim(v, `"`)
	}
	return out
}

// splitLabels splits a label block body on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// stripLabel removes one label pair from a rendered label block, keeping
// the rest in order — used to key histogram bucket series by their child
// identity without le.
func stripLabel(block, name string) string {
	labels := parseLabels(block)
	delete(labels, name)
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

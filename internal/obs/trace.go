package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. 0 means "no span" and is the
// parent of root spans.
type SpanID uint64

// SpanRecord is one finished span: a named interval with optional job,
// phase, and partition labels and a parent link. Partition is -1 when the
// span is not tied to one partition.
type SpanRecord struct {
	ID        SpanID
	Parent    SpanID
	Name      string
	Job       string
	Phase     string
	Partition int
	Start     time.Time
	Duration  time.Duration
}

// Span is a live span handle, returned by Tracer.Start. Set the label
// fields before calling End. The zero Span (and any span from a nil
// Tracer) is inert: End is a no-op.
type Span struct {
	ID        SpanID
	Parent    SpanID
	Name      string
	Job       string
	Phase     string
	Partition int
	Start     time.Time

	t *Tracer
}

// End records the span into the tracer's ring buffer. No-op on an inert
// span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Record(SpanRecord{
		ID: s.ID, Parent: s.Parent, Name: s.Name,
		Job: s.Job, Phase: s.Phase, Partition: s.Partition,
		Start: s.Start, Duration: time.Since(s.Start),
	})
}

// Tracer collects finished spans into a fixed-capacity ring buffer of
// recent spans (oldest records are overwritten once full; Dropped counts
// the overwrites). All methods are nil-receiver safe, so instrumented code
// can thread an optional *Tracer without branching.
type Tracer struct {
	next atomic.Uint64

	mu    sync.Mutex
	ring  []SpanRecord
	total int // records ever written
}

// DefaultTraceCapacity is the ring size NewTracer(0) uses — enough for a
// full CLI run's job, phase, task, and per-partition spans at paper scale.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer whose ring holds up to capacity finished
// spans (0 = DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

// NextID allocates a span id without starting a span — for spans whose
// interval is recorded after the fact (watermark-derived phase spans) but
// whose id must exist up front so children can link to it. Returns 0 on a
// nil tracer.
func (t *Tracer) NextID() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.next.Add(1))
}

// Start begins a span as a child of parent (0 for a root span). The
// returned handle is inert when t is nil.
func (t *Tracer) Start(name string, parent SpanID) Span {
	if t == nil {
		return Span{Partition: -1}
	}
	return Span{
		ID:        t.NextID(),
		Parent:    parent,
		Name:      name,
		Partition: -1,
		Start:     time.Now(),
		t:         t,
	}
}

// Record stores one finished span, assigning an id if rec.ID is 0, and
// returns the id. Oldest records are overwritten once the ring is full.
// No-op (returning 0) on a nil tracer.
func (t *Tracer) Record(rec SpanRecord) SpanID {
	if t == nil {
		return 0
	}
	if rec.ID == 0 {
		rec.ID = t.NextID()
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.total%cap(t.ring)] = rec
	}
	t.total++
	t.mu.Unlock()
	return rec.ID
}

// Spans returns a copy of the retained spans, ordered by start time.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.ring...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dropped returns how many spans were overwritten because the ring was
// full.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= cap(t.ring) {
		return 0
	}
	return t.total - cap(t.ring)
}

// TraceNode is one span in the JSON span tree written by WriteTraceJSON.
// Start and duration are milliseconds; start is relative to the trace's
// earliest span. Partition is -1 for spans not tied to one partition.
type TraceNode struct {
	Name       string       `json:"name"`
	Job        string       `json:"job,omitempty"`
	Phase      string       `json:"phase,omitempty"`
	Partition  int          `json:"partition"`
	StartMS    float64      `json:"start_ms"`
	DurationMS float64      `json:"duration_ms"`
	Children   []*TraceNode `json:"children,omitempty"`
}

// TraceDoc is the top-level JSON document of a trace file.
type TraceDoc struct {
	// Spans is the number of retained spans; Dropped counts spans lost to
	// the ring buffer (0 means the tree is complete).
	Spans   int `json:"spans"`
	Dropped int `json:"dropped"`
	// WallMS spans the earliest start to the latest end.
	WallMS float64      `json:"wall_ms"`
	Roots  []*TraceNode `json:"roots"`
}

// BuildTree assembles span records into a forest: children attach to their
// parent when it is retained, and spans whose parent was dropped (or 0)
// become roots. Siblings are ordered by start time.
func BuildTree(spans []SpanRecord, dropped int) *TraceDoc {
	doc := &TraceDoc{Spans: len(spans), Dropped: dropped}
	if len(spans) == 0 {
		return doc
	}
	base := spans[0].Start
	end := base
	nodes := make(map[SpanID]*TraceNode, len(spans))
	for _, sp := range spans {
		if sp.Start.Before(base) {
			base = sp.Start
		}
	}
	for _, sp := range spans {
		nodes[sp.ID] = &TraceNode{
			Name:       sp.Name,
			Job:        sp.Job,
			Phase:      sp.Phase,
			Partition:  sp.Partition,
			StartMS:    durMS(sp.Start.Sub(base)),
			DurationMS: durMS(sp.Duration),
		}
		if e := sp.Start.Add(sp.Duration); e.After(end) {
			end = e
		}
	}
	for _, sp := range spans { // spans is start-ordered, so children append in order
		n := nodes[sp.ID]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != sp.ID {
			parent.Children = append(parent.Children, n)
		} else {
			doc.Roots = append(doc.Roots, n)
		}
	}
	doc.WallMS = durMS(end.Sub(base))
	return doc
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// WriteTraceJSON renders the span forest of a tracer's retained spans as
// indented JSON (see TraceDoc for the schema).
func WriteTraceJSON(w io.Writer, spans []SpanRecord, dropped int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildTree(spans, dropped))
}

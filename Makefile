GO ?= go
BENCH ?= .
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASE ?= BENCH_PR9.json
MAX_REGRESS ?= 40
FUZZTIME ?= 60s
FUZZ_PKGS ?= ./internal/seqenc ./internal/seqdb
PROFILE_BENCH ?= BenchmarkFig4a
PROFILE_BENCHTIME ?= 3x

.PHONY: build test vet lint lashvet tools-test bench bench-smoke bench-ci bench-diff bench-gate fuzz profile race chaos clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection differential tests under the race
# detector: with faults armed and retries enabled, mining output must be
# byte-identical to the fault-free run. Set LASH_CHAOS_SEED to shift the
# deterministic seed window (CI randomizes it so every run exercises a
# fresh fault schedule; the seed is echoed for reproduction).
chaos:
	$(GO) test -race -count=1 -run '^TestChaos' -v .

# lashvet runs the project-invariant analyzer suite (ctxfirst,
# atomicfield, obshandle, emitgo, errjob, faultpoint, apierr) over the
# root module. The analyzers live in the tools/ module so the root go.mod
# stays dependency-free. See "Static analysis" in README.md.
lashvet:
	$(GO) -C tools run ./cmd/lashvet -dir .. ./...

# tools-test runs the analyzer suite's own tests (analysistest-style
# want-diagnostic cases plus the multichecker smoke test).
tools-test:
	$(GO) -C tools test ./...

# lint is the EXACT gate the CI lint job runs (one step per line, same
# order): formatting drift, go vet, the lashvet invariant suite, the
# Prometheus naming rules, then staticcheck when installed (CI installs a
# pinned version; locally it is optional). Keep this target and
# .github/workflows/ci.yml in sync.
lint: lashvet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi
	@out="$$(cd tools && gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -l found unformatted files in tools/:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) -C tools vet ./...
	$(GO) run ./cmd/metriclint
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

# fuzz runs every fuzz target in $(FUZZ_PKGS) for $(FUZZTIME) each (the CI
# nightly job calls this with the default 60s).
fuzz:
	@set -e; for pkg in $(FUZZ_PKGS); do \
		for target in $$($(GO) test $$pkg -list '^Fuzz' | grep '^Fuzz'); do \
			echo "=== fuzz $$pkg $$target ($(FUZZTIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME); \
		done; \
	done

# bench runs the mining benchmarks with allocation reporting and records
# the parsed results as JSON (committed as $(BENCH_OUT)). Tune with e.g.
# `make bench BENCH=Fig4 BENCHTIME=3x`.
bench:
	$(GO) test -bench=$(BENCH) -benchtime=$(BENCHTIME) -benchmem -run=^$$ . | tee /dev/stderr | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-smoke is the CI pass: every benchmark must still run (1 iteration),
# so the harness cannot bit-rot; results are parsed but discarded.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson > /dev/null

# bench-ci runs the smoke pass, keeps its JSON, and prints a non-failing
# delta report against the committed baseline. A 1-iteration run on a shared
# runner is noisy — the report is informational, never a merge gate.
bench-ci:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson > /tmp/lash-bench-ci.json
	-$(GO) run ./cmd/benchjson -diff $(BENCH_OUT) /tmp/lash-bench-ci.json

# bench-diff compares two committed benchmark documents (ns/op and allocs/op
# with % change), e.g. the PR-over-PR record:
#	make bench-diff BENCH_BASE=BENCH_PR2.json BENCH_OUT=BENCH_PR3.json
bench-diff:
	$(GO) run ./cmd/benchjson -diff $(BENCH_BASE) $(BENCH_OUT)

# bench-gate reruns the benchmarks (3 iterations for less noise than the
# smoke pass) and FAILS when any ns/op regresses more than $(MAX_REGRESS)%
# against the committed baseline. CI runs it soft-fail on PRs and surfaces
# the delta table in the step summary; run it locally before committing a
# perf-sensitive change.
bench-gate:
	$(GO) test -bench=$(BENCH) -benchtime=3x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson > /tmp/lash-bench-gate.json
	$(GO) run ./cmd/benchjson -diff -max-regress $(MAX_REGRESS) $(BENCH_OUT) /tmp/lash-bench-gate.json

# profile captures CPU and heap profiles of the Fig. 4(a) benchmarks (the
# end-to-end distributed-mining comparison). See "Profiling" in README.md.
profile:
	$(GO) test -bench=$(PROFILE_BENCH) -benchtime=$(PROFILE_BENCHTIME) -benchmem -run=^$$ \
		-cpuprofile=cpu.pprof -memprofile=mem.pprof -o lash-bench.test .
	@echo ""
	@echo "profiles written: cpu.pprof mem.pprof (binary: lash-bench.test)"
	@echo "  $(GO) tool pprof -top cpu.pprof"
	@echo "  $(GO) tool pprof -top -sample_index=alloc_objects mem.pprof"

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof lash-bench.test

GO ?= go
BENCH ?= .
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_PR4.json
BENCH_BASE ?= BENCH_PR3.json
PROFILE_BENCH ?= BenchmarkFig4a
PROFILE_BENCHTIME ?= 3x

.PHONY: build test vet bench bench-smoke bench-ci bench-diff profile race clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the mining benchmarks with allocation reporting and records
# the parsed results as JSON (committed as $(BENCH_OUT)). Tune with e.g.
# `make bench BENCH=Fig4 BENCHTIME=3x`.
bench:
	$(GO) test -bench=$(BENCH) -benchtime=$(BENCHTIME) -benchmem -run=^$$ . | tee /dev/stderr | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-smoke is the CI pass: every benchmark must still run (1 iteration),
# so the harness cannot bit-rot; results are parsed but discarded.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson > /dev/null

# bench-ci runs the smoke pass, keeps its JSON, and prints a non-failing
# delta report against the committed baseline. A 1-iteration run on a shared
# runner is noisy — the report is informational, never a merge gate.
bench-ci:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson > /tmp/lash-bench-ci.json
	-$(GO) run ./cmd/benchjson -diff $(BENCH_OUT) /tmp/lash-bench-ci.json

# bench-diff compares two committed benchmark documents (ns/op and allocs/op
# with % change), e.g. the PR-over-PR record:
#	make bench-diff BENCH_BASE=BENCH_PR2.json BENCH_OUT=BENCH_PR3.json
bench-diff:
	$(GO) run ./cmd/benchjson -diff $(BENCH_BASE) $(BENCH_OUT)

# profile captures CPU and heap profiles of the Fig. 4(a) benchmarks (the
# end-to-end distributed-mining comparison). See "Profiling" in README.md.
profile:
	$(GO) test -bench=$(PROFILE_BENCH) -benchtime=$(PROFILE_BENCHTIME) -benchmem -run=^$$ \
		-cpuprofile=cpu.pprof -memprofile=mem.pprof -o lash-bench.test .
	@echo ""
	@echo "profiles written: cpu.pprof mem.pprof (binary: lash-bench.test)"
	@echo "  $(GO) tool pprof -top cpu.pprof"
	@echo "  $(GO) tool pprof -top -sample_index=alloc_objects mem.pprof"

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof lash-bench.test

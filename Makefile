GO ?= go
BENCH ?= .
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_PR2.json

.PHONY: build test vet bench bench-smoke race clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the mining benchmarks with allocation reporting and records
# the parsed results as JSON (committed as BENCH_PR2.json). Tune with e.g.
# `make bench BENCH=Fig4 BENCHTIME=3x`.
bench:
	$(GO) test -bench=$(BENCH) -benchtime=$(BENCHTIME) -benchmem -run=^$$ . | tee /dev/stderr | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-smoke is the CI pass: every benchmark must still run (1 iteration),
# so the harness cannot bit-rot; results are parsed but discarded.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson > /dev/null

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: build test vet bench race clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...

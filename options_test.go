package lash_test

import (
	"strings"
	"testing"

	"lash"
)

func validOptions() lash.Options {
	return lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3}
}

func TestOptionsValidate(t *testing.T) {
	if err := validOptions().Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*lash.Options)
		want   string
	}{
		{"zero support", func(o *lash.Options) { o.MinSupport = 0 }, "MinSupport"},
		{"negative gap", func(o *lash.Options) { o.MaxGap = -1 }, "MaxGap"},
		{"short length", func(o *lash.Options) { o.MaxLength = 1 }, "MaxLength"},
		{"negative workers", func(o *lash.Options) { o.Workers = -1 }, "Workers"},
		{"negative cap", func(o *lash.Options) { o.MaxIntermediate = -1 }, "MaxIntermediate"},
		{"negative budget", func(o *lash.Options) { o.MemoryBudget = -1 }, "MemoryBudget"},
		{"bad algorithm", func(o *lash.Options) { o.Algorithm = lash.Algorithm(42) }, "algorithm"},
		{"bad miner", func(o *lash.Options) { o.LocalMiner = lash.LocalMiner(42) }, "miner"},
		{"bad restriction", func(o *lash.Options) { o.Restriction = lash.Restriction(42) }, "restriction"},
		{"mgfsm with dfs", func(o *lash.Options) { o.Algorithm = lash.AlgorithmMGFSM; o.LocalMiner = lash.MinerDFS }, "MinerBFS"},
		{"mgfsm with psm-noindex", func(o *lash.Options) { o.Algorithm = lash.AlgorithmMGFSM; o.LocalMiner = lash.MinerPSMNoIndex }, "MinerBFS"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := validOptions()
			c.mutate(&o)
			err := o.Validate()
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// MG-FSM always mines with BFS: an unset LocalMiner and an explicit
// MinerBFS are both accepted (and canonicalize to the same cache key, so
// Validate, Canonical, and Mine agree); everything else is contradictory.
func TestMGFSMLocalMinerAgreement(t *testing.T) {
	unset := validOptions()
	unset.Algorithm = lash.AlgorithmMGFSM
	if err := unset.Validate(); err != nil {
		t.Fatalf("MGFSM with unset LocalMiner rejected: %v", err)
	}
	bfs := unset
	bfs.LocalMiner = lash.MinerBFS
	if err := bfs.Validate(); err != nil {
		t.Fatalf("MGFSM with MinerBFS rejected: %v", err)
	}
	if unset.CacheKey() != bfs.CacheKey() {
		t.Errorf("cache keys differ: %q vs %q", unset.CacheKey(), bfs.CacheKey())
	}
}

func TestOptionsCacheKey(t *testing.T) {
	base := validOptions()

	// Workers never affects output.
	w := base
	w.Workers = 7
	if w.CacheKey() != base.CacheKey() {
		t.Errorf("Workers changed the cache key: %q vs %q", w.CacheKey(), base.CacheKey())
	}

	// MemoryBudget is an execution-mode knob — the spill path produces
	// byte-identical results, so budgeted and in-memory runs share a key.
	budget := base
	budget.MemoryBudget = 64 << 20
	if budget.CacheKey() != base.CacheKey() {
		t.Errorf("MemoryBudget changed the cache key: %q vs %q", budget.CacheKey(), base.CacheKey())
	}
	if budget.Canonical().MemoryBudget != 0 {
		t.Errorf("Canonical kept MemoryBudget = %d", budget.Canonical().MemoryBudget)
	}

	// LocalMiner is irrelevant for the baselines and MG-FSM...
	naive := base
	naive.Algorithm = lash.AlgorithmNaive
	naivePSM := naive
	naivePSM.LocalMiner = lash.MinerBFS
	if naive.CacheKey() != naivePSM.CacheKey() {
		t.Errorf("baseline LocalMiner changed the cache key")
	}
	// ... but is kept for the LASH variants (it shows up in Result.Explored).
	bfs := base
	bfs.LocalMiner = lash.MinerBFS
	if bfs.CacheKey() == base.CacheKey() {
		t.Errorf("LASH LocalMiner ignored by the cache key")
	}

	// MaxIntermediate only matters for the emit-capped baselines.
	capped := base
	capped.MaxIntermediate = 100
	if capped.CacheKey() != base.CacheKey() {
		t.Errorf("LASH MaxIntermediate changed the cache key")
	}
	naiveCapped := naive
	naiveCapped.MaxIntermediate = 100
	if naiveCapped.CacheKey() == naive.CacheKey() {
		t.Errorf("baseline MaxIntermediate ignored by the cache key")
	}

	// Every output-relevant field must show up.
	distinct := map[string]lash.Options{}
	for _, o := range []lash.Options{
		base,
		{MinSupport: 3, MaxGap: 1, MaxLength: 3},
		{MinSupport: 2, MaxGap: 2, MaxLength: 3},
		{MinSupport: 2, MaxGap: 1, MaxLength: 4},
		{MinSupport: 2, MaxGap: 1, MaxLength: 3, Algorithm: lash.AlgorithmLASHFlat},
		{MinSupport: 2, MaxGap: 1, MaxLength: 3, Restriction: lash.RestrictClosed},
	} {
		key := o.CacheKey()
		if prev, dup := distinct[key]; dup {
			t.Errorf("options %+v and %+v share cache key %q", prev, o, key)
		}
		distinct[key] = o
	}
}

func TestParseHelpers(t *testing.T) {
	algs := map[string]lash.Algorithm{
		"":          lash.AlgorithmLASH,
		"lash":      lash.AlgorithmLASH,
		"LASH":      lash.AlgorithmLASH,
		"naive":     lash.AlgorithmNaive,
		"seminaive": lash.AlgorithmSemiNaive,
		"mg-fsm":    lash.AlgorithmMGFSM,
		"lashflat":  lash.AlgorithmLASHFlat,
	}
	for in, want := range algs {
		got, err := lash.ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := lash.ParseAlgorithm("bogus"); err == nil {
		t.Error("ParseAlgorithm accepted bogus name")
	}

	miners := map[string]lash.LocalMiner{
		"":            lash.MinerPSM,
		"psm":         lash.MinerPSM,
		"psm-noindex": lash.MinerPSMNoIndex,
		"bfs":         lash.MinerBFS,
		"dfs":         lash.MinerDFS,
	}
	for in, want := range miners {
		got, err := lash.ParseLocalMiner(in)
		if err != nil || got != want {
			t.Errorf("ParseLocalMiner(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := lash.ParseLocalMiner("bogus"); err == nil {
		t.Error("ParseLocalMiner accepted bogus name")
	}

	restrictions := map[string]lash.Restriction{
		"":        lash.RestrictNone,
		"none":    lash.RestrictNone,
		"closed":  lash.RestrictClosed,
		"maximal": lash.RestrictMaximal,
	}
	for in, want := range restrictions {
		got, err := lash.ParseRestriction(in)
		if err != nil || got != want {
			t.Errorf("ParseRestriction(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != want.String() {
			t.Errorf("Restriction(%v).String() = %q", got, got.String())
		}
	}
	if _, err := lash.ParseRestriction("bogus"); err == nil {
		t.Error("ParseRestriction accepted bogus name")
	}
	if s := lash.Restriction(9).String(); !strings.Contains(s, "9") {
		t.Errorf("Restriction(9).String() = %q", s)
	}
}

// TestMinerValidates ensures the frequency-reusing Miner rejects invalid
// options before running any job.
func TestMinerValidates(t *testing.T) {
	db, err := lash.NewDatabaseBuilder().AddSequence("a", "b").Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := lash.NewMiner(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mine(lash.Options{MinSupport: 1, MaxLength: 1}); err == nil {
		t.Error("Miner.Mine accepted MaxLength 1")
	}
	if m.FrequencyJobsRun() != 0 {
		t.Error("invalid options still ran a frequency job")
	}
}

// TestStringParseRoundTrip pins the contract that every valid enum value's
// String() form is accepted by its Parse helper — previously true for
// "MG-FSM" and "LASH(flat)" only by hand-maintained coincidence, and false
// for the local miners.
func TestStringParseRoundTrip(t *testing.T) {
	for _, a := range []lash.Algorithm{
		lash.AlgorithmLASH, lash.AlgorithmNaive, lash.AlgorithmSemiNaive,
		lash.AlgorithmMGFSM, lash.AlgorithmLASHFlat,
	} {
		got, err := lash.ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
	for _, m := range []lash.LocalMiner{
		lash.MinerPSM, lash.MinerPSMNoIndex, lash.MinerBFS, lash.MinerDFS,
	} {
		got, err := lash.ParseLocalMiner(m.String())
		if err != nil || got != m {
			t.Errorf("ParseLocalMiner(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	for _, r := range []lash.Restriction{
		lash.RestrictNone, lash.RestrictClosed, lash.RestrictMaximal,
	} {
		got, err := lash.ParseRestriction(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRestriction(%q) = %v, %v; want %v", r.String(), got, err, r)
		}
	}
	// The paper's figure label for the indexed PSM stays accepted.
	if got, err := lash.ParseLocalMiner("PSM+Index"); err != nil || got != lash.MinerPSM {
		t.Errorf("ParseLocalMiner(PSM+Index) = %v, %v; want MinerPSM", got, err)
	}
}

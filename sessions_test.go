package lash_test

import (
	"strings"
	"testing"

	"lash"
)

func TestSessionBuilder(t *testing.T) {
	s := lash.NewSessionBuilder()
	// Out-of-order events across two users.
	s.Add("u2", 50, "book")
	s.Add("u1", 30, "camera")
	s.Add("u1", 10, "laptop")
	s.Add("u1", 20, "mouse")
	s.Add("u2", 40, "camera")
	if s.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d", s.NumUsers())
	}
	b := lash.NewDatabaseBuilder()
	s.AppendTo(b)
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 {
		t.Fatalf("NumSequences = %d", db.NumSequences())
	}
	// u2 was seen first → first sequence; events sorted by timestamp.
	if got := strings.Join(db.Sequence(0), " "); got != "camera book" {
		t.Errorf("u2 session = %q", got)
	}
	if got := strings.Join(db.Sequence(1), " "); got != "laptop mouse camera" {
		t.Errorf("u1 session = %q", got)
	}
}

func TestSessionBuilderStableTies(t *testing.T) {
	s := lash.NewSessionBuilder()
	s.Add("u", 7, "a")
	s.Add("u", 7, "b")
	s.Add("u", 7, "c")
	b := lash.NewDatabaseBuilder()
	s.AppendTo(b)
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(db.Sequence(0), " "); got != "a b c" {
		t.Errorf("tied events reordered: %q", got)
	}
}

// End to end: sessions + hierarchy mined through the public API — the
// paper's market-basket motivation ("first some camera, then some
// photography book, then some flash").
func TestSessionsEndToEnd(t *testing.T) {
	s := lash.NewSessionBuilder()
	cams := []string{"eos70d", "d750", "a7"}
	books := []string{"photo101", "lightbook"}
	flashes := []string{"fl600", "fl900"}
	ts := int64(0)
	for u := 0; u < 9; u++ {
		user := string(rune('a' + u))
		s.Add(user, ts, cams[u%len(cams)])
		s.Add(user, ts+1, books[u%len(books)])
		s.Add(user, ts+2, flashes[u%len(flashes)])
		ts += 10
	}
	b := lash.NewDatabaseBuilder()
	for _, c := range cams {
		b.AddParent(c, "camera")
	}
	for _, bk := range books {
		b.AddParent(bk, "photo-book")
	}
	for _, f := range flashes {
		b.AddParent(f, "flash")
	}
	s.AppendTo(b)
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lash.Mine(db, lash.Options{MinSupport: 9, MaxGap: 0, MaxLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Patterns {
		if strings.Join(p.Items, " ") == "camera photo-book flash" && p.Support == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("category funnel not mined; got %v", res.Patterns)
	}
}

package lash

import (
	"io"
	"time"

	"lash/internal/obs"
)

// Trace collects the span tree of one or more mining runs: every MapReduce
// job, its map/shuffle/reduce phases, per-task and per-partition intervals,
// and any caller-side spans added with Span (corpus loading, output
// writing). Attach one via Options.Trace, then render it with WriteJSON —
// the `lash -trace-out` flag does exactly that.
//
// A Trace retains a bounded ring of recent spans (the most recent 65536);
// Dropped reports how many older spans a very large run overwrote. Trace is
// safe for concurrent use, but is meant to observe one run at a time —
// spans of concurrent runs interleave into one forest.
type Trace struct {
	tracer *obs.Tracer
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{tracer: obs.NewTracer(0)}
}

// handle exposes the internal tracer to the mining pipeline (nil-safe).
func (t *Trace) handle() *obs.Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Span starts a named caller-side span at the trace's root level and
// returns the function that ends it:
//
//	done := tr.Span("load-corpus")
//	db, err := loadDatabase(...)
//	done()
//
// Safe on a nil Trace (the returned function is a no-op).
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	sp := t.tracer.Start(name, 0)
	return sp.End
}

// TraceSpan is one finished span, in caller-visible form.
type TraceSpan struct {
	Name      string
	Job       string // MapReduce job name ("flist", "partition+mine", ...)
	Phase     string // "map", "shuffle", "reduce" for phase/task spans
	Partition int    // partition or task index; -1 when not applicable
	Start     time.Time
	Duration  time.Duration
}

// Spans returns the retained spans ordered by start time.
func (t *Trace) Spans() []TraceSpan {
	if t == nil {
		return nil
	}
	recs := t.tracer.Spans()
	out := make([]TraceSpan, len(recs))
	for i, r := range recs {
		out[i] = TraceSpan{
			Name: r.Name, Job: r.Job, Phase: r.Phase, Partition: r.Partition,
			Start: r.Start, Duration: r.Duration,
		}
	}
	return out
}

// Dropped reports how many spans were overwritten because the trace's ring
// buffer filled up (0 means WriteJSON's tree is complete).
func (t *Trace) Dropped() int {
	return t.handle().Dropped()
}

// WriteJSON renders the collected spans as an indented JSON span forest:
//
//	{
//	  "spans": 12,            // retained spans
//	  "dropped": 0,           // spans lost to the ring buffer
//	  "wall_ms": 1042.7,      // earliest start to latest end
//	  "roots": [              // top-level spans, children nested
//	    {"name": "mine", "partition": -1, "start_ms": 0, "duration_ms": 1040.1,
//	     "children": [
//	       {"name": "job", "job": "flist", ...,
//	        "children": [{"name": "phase", "phase": "map", ...}, ...]},
//	       ...]}
//	  ]
//	}
//
// start_ms is relative to the trace's earliest span; a job's phase children
// ("map", "shuffle", "reduce") are laid out back to back and sum to the
// job's duration.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return obs.WriteTraceJSON(w, nil, 0)
	}
	return obs.WriteTraceJSON(w, t.tracer.Spans(), t.tracer.Dropped())
}

// Target package for errjob: import-path base "core" is a boundary
// package, so error constructors must %w-wrap causes and carry the
// package/job annotation prefix.
package core

import (
	"errors"
	"fmt"
)

var sentinel = errors.New("core: partition store corrupt")

func wrap(err error) error {
	return fmt.Errorf("core: partition %d: %w", 3, err) // annotated and wrapped: allowed
}

func chained(err error) error {
	return fmt.Errorf("%w: pivot 12: %w", sentinel, err) // leading %w chains an annotated sentinel: allowed
}

func flattened(err error) error {
	return fmt.Errorf("core: partition %d: %v", 3, err) // want `error cause formatted with %v instead of %w`
}

func stringified(err error) error {
	return fmt.Errorf("core: partition failed: %s", err) // want `error cause formatted with %s instead of %w`
}

func unannotated() error {
	return errors.New("partition store corrupt") // want `lacks the "core:" job/phase annotation`
}

func unannotatedf(n int) error {
	return fmt.Errorf("bad partition %d", n) // want `lacks the "core:" job/phase annotation`
}

func propagate(err error) error {
	return err // bare propagation: annotation happened below, allowed
}

// Package other is not a boundary package: errjob does not apply.
package other

import (
	"errors"
	"fmt"
)

func anyStyle(err error) error {
	if err != nil {
		return fmt.Errorf("whatever: %v", err)
	}
	return errors.New("free-form message")
}

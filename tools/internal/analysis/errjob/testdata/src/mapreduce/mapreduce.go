// Suppression case for errjob in the mapreduce boundary package.
package mapreduce

import "fmt"

func userFacing(n int) error {
	//lashvet:ignore errjob message is user-facing and annotated by the HTTP layer
	return fmt.Errorf("task %d failed", n)
}

func stillBad(n int) error {
	return fmt.Errorf("task %d failed", n) // want `lacks the "mapreduce:" job/phase annotation`
}

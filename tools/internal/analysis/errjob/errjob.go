// Package errjob enforces the error contract at the mapreduce/core
// boundary (internal/mapreduce package doc "Errors and cancellation"):
// errors that cross out of the MapReduce substrate or the core pipeline
// must (a) wrap their cause with %w — so errors.Is(err, context.Canceled)
// and errors.As keep working through the job runner and the HTTP layer —
// and (b) carry a job/phase annotation, which mechanically means the
// message starts with the package prefix ("mapreduce: job %q: ...",
// "core: partition %d: ...") or chains off an already-annotated sentinel
// via a leading %w.
//
// The analyzer checks fmt.Errorf and errors.New calls in the boundary
// packages (import-path base mapreduce, core, or baseline by default):
//
//   - an error-typed argument to fmt.Errorf whose format verb is not %w
//     is reported (the cause chain is being flattened to text);
//   - a constant message that neither starts with "<package>: " nor with
//     "%w" is reported (the error will surface without job/phase context).
//
// Non-constant format strings are skipped; bare `return err` propagation
// is always fine (annotation happened below).
package errjob

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"lash/tools/internal/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// Packages are import-path bases whose error constructors are checked.
	Packages []string
}

// DefaultConfig matches this repository's boundary packages.
func DefaultConfig() Config {
	return Config{Packages: []string{"mapreduce", "core", "baseline"}}
}

// NewAnalyzer returns an errjob analyzer with the given configuration.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "errjob",
		Doc:  "errors crossing the mapreduce/core boundary wrap causes with %w and carry job/phase annotation",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is errjob with DefaultConfig.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	applies := false
	for _, p := range cfg.Packages {
		if analysis.PathBase(pass.Pkg.Path()) == p {
			applies = true
		}
	}
	if !applies {
		return nil
	}
	prefix := pass.Pkg.Name() + ":"

	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isStdCall(pass.TypesInfo, call, "fmt", "Errorf"):
			checkErrorf(pass, call, prefix)
		case isStdCall(pass.TypesInfo, call, "errors", "New"):
			if msg, ok := constString(pass.TypesInfo, call.Args[0]); ok {
				checkPrefix(pass, call, msg, prefix)
			}
		}
		return true
	})
	return nil
}

func isStdCall(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name && len(call.Args) > 0
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, prefix string) {
	format, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok {
		return // computed format: out of scope
	}
	checkPrefix(pass, call, format, prefix)

	verbs, indexed := scanVerbs(format)
	if indexed {
		return // explicit argument indexes: out of scope
	}
	for i, arg := range call.Args[1:] {
		if !isErrorValue(pass.TypesInfo, arg) {
			continue
		}
		if i >= len(verbs) {
			break // vet territory (too few verbs); not ours
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"error cause formatted with %%%c instead of %%w; wrapping is required at the %s boundary so errors.Is/As (and ctx cause detection) see the chain",
				verbs[i], pass.Pkg.Name())
		}
	}
}

// checkPrefix reports messages lacking the package/job annotation prefix.
func checkPrefix(pass *analysis.Pass, call *ast.CallExpr, msg, prefix string) {
	if strings.HasPrefix(msg, prefix) || strings.HasPrefix(msg, "%w") {
		return
	}
	pass.Reportf(call.Args[0].Pos(),
		"error message %q lacks the %q job/phase annotation prefix (or a leading %%w chaining an annotated sentinel)",
		abbreviate(msg), prefix)
}

// abbreviate shortens long messages for diagnostics.
func abbreviate(s string) string {
	if len(s) > 48 {
		return s[:45] + "..."
	}
	return s
}

// constString evaluates expr to a constant string if possible.
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrorValue reports whether the expression's static type implements
// the error interface.
func isErrorValue(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(tv.Type, errType)
}

// scanVerbs extracts the verb letter for each argument-consuming fmt verb
// in order. '*' width/precision arguments are recorded as '*' so argument
// positions stay aligned. Returns indexed=true when the format uses
// explicit %[n] indexes, which this scanner does not model.
func scanVerbs(format string) (verbs []byte, indexed bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue // literal %%
		}
		// Flags, width, precision (a '*' consumes an argument).
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[i])) {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		if i < len(format) && format[i] == '[' {
			return nil, true
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, false
}

package errjob_test

import (
	"testing"

	"lash/tools/internal/analysis/errjob"
	"lash/tools/internal/analysis/vettest"
)

func TestErrJob(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), errjob.Analyzer, "core", "other", "mapreduce")
}

// Package load type-checks Go packages for the lashvet analyzers without
// any dependency beyond the standard library and the go tool itself:
// package metadata comes from `go list -export -deps -json`, source files
// are parsed with go/parser, and imports are resolved from the compiler
// export data the go command already has in its build cache — the same
// offline mechanism `go vet` uses, reimplemented here because x/tools'
// go/packages is not available to this build.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// ListPackage is the subset of `go list -json` output the loader uses.
type ListPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string // export data file (with -export)
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Package is one parsed and type-checked target package.
type Package struct {
	List  *ListPackage
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Program holds the shared state of one load: the file set, the listed
// package universe, and the export-data importer.
type Program struct {
	Fset    *token.FileSet
	Targets []*Package

	exports map[string]string // import path → export data file
	imp     types.ImporterFrom
}

// Load lists patterns (with dependencies) in dir, then parses and
// type-checks every matched non-standard package. Listing or parse errors
// fail the load; type errors are attached per package by Check.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), exports: make(map[string]string)}
	var targets []*ListPackage
	dec := json.NewDecoder(out)
	for {
		lp := &ListPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			prog.exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}
	prog.imp = ExportImporter(prog.Fset, prog.lookup)
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := prog.check(lp)
		if err != nil {
			return nil, err
		}
		prog.Targets = append(prog.Targets, pkg)
	}
	return prog, nil
}

func (p *Program) lookup(path string) (io.ReadCloser, error) {
	file, ok := p.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// check parses the package's GoFiles and type-checks them against the
// export data of their imports. Only non-test files are analyzed — the
// invariants lashvet enforces are production-code contracts, and the
// analyzers' own analysistest-style suites cover test semantics.
func (p *Program) check(lp *ListPackage) (*Package, error) {
	files, err := ParseFiles(p.Fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := NewInfo()
	conf := types.Config{Importer: p.imp, Error: func(error) {}}
	tpkg, err := conf.Check(lp.ImportPath, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{List: lp, Files: files, Pkg: tpkg, Info: info}, nil
}

// ParseFiles parses the named files (relative to dir) with comments.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ExportImporter wraps the compiler ("gc") importer with a custom export
// data lookup, sharing fset positions.
func ExportImporter(fset *token.FileSet, lookup func(string) (io.ReadCloser, error)) types.ImporterFrom {
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// StdImporter resolves standard-library imports from build-cache export
// data, shelling out to `go list -export -deps` lazily per unseen path
// (one batch per root import; transitive dependencies land in the same
// batch). It backs the analyzers' testdata loader, where target packages
// live outside any module.
type StdImporter struct {
	mu      sync.Mutex
	exports map[string]string
	imp     types.ImporterFrom
}

// NewStdImporter returns a StdImporter sharing fset.
func NewStdImporter(fset *token.FileSet) *StdImporter {
	s := &StdImporter{exports: make(map[string]string)}
	s.imp = ExportImporter(fset, s.lookup)
	return s
}

// Import type-checks (from export data) the standard-library package.
func (s *StdImporter) Import(path string) (*types.Package, error) {
	return s.imp.ImportFrom(path, "", 0)
}

func (s *StdImporter) lookup(path string) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if file, ok := s.exports[path]; ok {
		return os.Open(file)
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list -export %s: %w\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp ListPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			s.exports[lp.ImportPath] = lp.Export
		}
	}
	file, ok := s.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

package faultpoint_test

import (
	"testing"

	"lash/tools/internal/analysis/faultpoint"
	"lash/tools/internal/analysis/vettest"
)

func TestFaultPoint(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), faultpoint.Analyzer, "pipeline", "suppress", "faults")
}

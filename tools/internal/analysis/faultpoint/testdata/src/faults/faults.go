// Package faults stubs lash/internal/faults for the faultpoint analyzer
// tests: same import-path base, same Hit shape. The analyzer exempts this
// package itself, so the free-form name below must not be reported.
package faults

// Registry is the injection-point registry stub.
type Registry struct{}

// Hit reports whether the named point is armed.
func (r *Registry) Hit(name string) error { return nil }

// selfTest exercises Hit with an arbitrary name, as the real package's own
// tests do — exempt from the naming contract.
func selfTest(r *Registry) error { return r.Hit("anything goes here") }

// Target package exercising the faultpoint naming contract.
package pipeline

import "faults"

// ptMerge shows that a named constant satisfies the literal requirement —
// it is still a greppable compile-time string.
const ptMerge = "pipeline.spill.merge"

func run(reg *faults.Registry, computed string) error {
	if err := reg.Hit("pipeline.map.task"); err != nil { // ok: constant, prefixed, unique
		return err
	}
	if err := reg.Hit(ptMerge); err != nil { // ok: named constant
		return err
	}
	if err := reg.Hit("map.task"); err != nil { // want `lacks the "pipeline\." package prefix`
		return err
	}
	if err := reg.Hit(computed); err != nil { // want `must be a constant string`
		return err
	}
	if err := reg.Hit("pipeline." + computed); err != nil { // want `must be a constant string`
		return err
	}
	return reg.Hit("pipeline.map.task") // want `duplicates another Hit site`
}

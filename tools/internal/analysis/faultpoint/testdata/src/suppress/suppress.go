// Suppression case for faultpoint.
package suppress

import "faults"

func run(reg *faults.Registry, name string) error {
	//lashvet:ignore faultpoint point names come from a vetted table keyed elsewhere
	return reg.Hit(name)
}

func stillBad(reg *faults.Registry, name string) error {
	return reg.Hit(name) // want `must be a constant string`
}

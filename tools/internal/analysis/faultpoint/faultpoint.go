// Package faultpoint enforces the fault-injection naming contract
// (internal/faults package doc): every Registry.Hit call site names its
// point with a constant, package-prefixed string — "<package>.<point>" —
// unique within the package.
//
// The contract is what makes chaos tests trustworthy: a test arms
// "mapreduce.spill.write" by name, so the name at the Hit site must be a
// greppable constant (never computed at runtime), must say which package
// owns it (so two subsystems cannot collide on "flush"), and must not be
// reused for a second site (an armed point firing from two places would
// make FailNth counts ambiguous).
//
// The faults package itself is exempt — its own tests exercise arbitrary
// names by design.
package faultpoint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"lash/tools/internal/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// FaultsPackage is the import-path base of the injection registry
	// package whose Hit method anchors the check.
	FaultsPackage string
}

// DefaultConfig matches this repository's lash/internal/faults.
func DefaultConfig() Config {
	return Config{FaultsPackage: "faults"}
}

// NewAnalyzer returns a faultpoint analyzer with the given configuration.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "faultpoint",
		Doc:  "fault-injection points are constant, package-prefixed, unique names",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is faultpoint with DefaultConfig.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	if analysis.PathBase(pass.Pkg.Path()) == cfg.FaultsPackage {
		return nil // the registry's own package uses arbitrary names freely
	}
	prefix := pass.Pkg.Name() + "."
	seen := make(map[string]bool)

	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok || !isHitCall(pass.TypesInfo, call, cfg.FaultsPackage) {
			return true
		}
		name, ok := constString(pass.TypesInfo, call.Args[0])
		if !ok {
			pass.Reportf(call.Args[0].Pos(),
				"fault-point name must be a constant string, not a computed value; chaos tests arm points by grepping for the literal")
			return true
		}
		if !strings.HasPrefix(name, prefix) {
			pass.Reportf(call.Args[0].Pos(),
				"fault-point name %q lacks the %q package prefix; points are namespaced by their owning package", name, prefix)
			return true
		}
		if seen[name] {
			pass.Reportf(call.Args[0].Pos(),
				"fault-point name %q duplicates another Hit site in this package; FailNth counts would be ambiguous across sites", name)
			return true
		}
		seen[name] = true
		return true
	})
	return nil
}

// isHitCall reports whether call invokes the Hit method of the faults
// registry package (matched by import-path base, so testdata stubs
// exercise the same path as the real tree).
func isHitCall(info *types.Info, call *ast.CallExpr, faultsPkg string) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Name() == "Hit" && fn.Pkg() != nil &&
		analysis.PathBase(fn.Pkg().Path()) == faultsPkg && len(call.Args) == 1
}

// constString evaluates expr to a constant string if possible.
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// Package vettest is an analysistest-style harness for the lashvet
// analyzers: it loads a package from a testdata/src tree, runs one
// analyzer over it with the same driver-side suppression filtering the
// real lashvet binary applies, and compares the surviving diagnostics
// against `// want "regexp"` comments in the source.
//
// Layout mirrors x/tools' analysistest: Run(t, dir, analyzer, "a") loads
// dir/src/a. Stub packages placed next to the target (dir/src/obs,
// dir/src/mapreduce, ...) resolve imports like "obs" — the analyzers
// match types by import-path base precisely so stubs exercise the same
// code paths as the real tree. Standard-library imports resolve from the
// build cache's export data.
package vettest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lash/tools/internal/analysis"
	"lash/tools/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each named package from dir/src/<pkg>, applies the analyzer,
// filters diagnostics through //lashvet:ignore directives (reporting
// malformed ones), and checks the result against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	imp := newTestImporter(dir)
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			runOne(t, imp, a, pkg)
		})
	}
}

func runOne(t *testing.T, imp *testImporter, a *analysis.Analyzer, pkg string) {
	t.Helper()
	tp, err := imp.loadLocal(pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", pkg, err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      imp.fset,
		Files:     tp.files,
		Pkg:       tp.pkg,
		TypesInfo: tp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags = Filter(imp.fset, tp.files, a.Name, diags)
	check(t, imp.fset, tp.files, diags)
}

// Filter applies the driver-side suppression pass: diagnostics covered by
// a //lashvet:ignore directive for name are dropped, and malformed
// directives are reported as diagnostics of their own. Both lashvet modes
// (standalone and vettool) and this harness share it so testdata exercises
// production semantics.
func Filter(fset *token.FileSet, files []*ast.File, name string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	dirs, bad := analysis.ParseDirectives(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		if !analysis.Suppressed(fset, dirs, name, d.Pos) {
			kept = append(kept, d)
		}
	}
	return append(kept, bad...)
}

// want is one expectation: a line in a file and a message pattern.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of a want comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// parseWants scans // want comments. A want applies to the line it sits
// on; several quoted patterns may follow one marker.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(strings.TrimSpace(text), "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[idx:], -1) {
					pat := q
					if q[0] == '"' {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					} else {
						pat = strings.Trim(q, "`")
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// check matches diagnostics against wants 1:1 by file+line+pattern.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
diag:
	for _, d := range diags {
		p := fset.Position(d.Pos)
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.matched = true
				continue diag
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// testImporter resolves imports first from dir/src (stub packages), then
// from standard-library export data.
type testImporter struct {
	fset *token.FileSet
	src  string
	std  *load.StdImporter
	pkgs map[string]*testPkg
}

type testPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newTestImporter(dir string) *testImporter {
	fset := token.NewFileSet()
	return &testImporter{
		fset: fset,
		src:  filepath.Join(dir, "src"),
		std:  load.NewStdImporter(fset),
		pkgs: make(map[string]*testPkg),
	}
}

// Import implements types.Importer over stubs-then-stdlib.
func (imp *testImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(imp.src, path)); err == nil && st.IsDir() {
		tp, err := imp.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return tp.pkg, nil
	}
	return imp.std.Import(path)
}

// loadLocal parses and type-checks the stub/target package at src/<path>.
func (imp *testImporter) loadLocal(path string) (*testPkg, error) {
	if tp, ok := imp.pkgs[path]; ok {
		return tp, nil
	}
	dir := filepath.Join(imp.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("vettest: no .go files in %s", dir)
	}
	files, err := load.ParseFiles(imp.fset, dir, names)
	if err != nil {
		return nil, err
	}
	info := load.NewInfo()
	conf := types.Config{Importer: imp, Error: func(error) {}}
	pkg, err := conf.Check(path, imp.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vettest: type-checking %s: %w", path, err)
	}
	tp := &testPkg{pkg: pkg, files: files, info: info}
	imp.pkgs[path] = tp
	return tp, nil
}

package server

import (
	"errors"
	"fmt"
	"net/http"
)

// writeJSON forwards the caller's status: non-constant, never flagged.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	fmt.Fprintln(w, v)
}

// writeError is the sanctioned envelope helper: exempt by name.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func handlers(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)   // want `http.Error bypasses the error envelope`
	w.WriteHeader(http.StatusNotFound)             // want `WriteHeader\(404\) writes an error status without the error envelope`
	w.WriteHeader(500)                             // want `WriteHeader\(500\) writes an error status`
	writeJSON(w, http.StatusConflict, "conflict!") // want `writeJSON with error status 409 bypasses the error envelope`

	w.WriteHeader(http.StatusOK)     // 2xx: fine
	writeJSON(w, http.StatusOK, nil) // fine
	writeError(w, http.StatusBadRequest, errors.New("x"))

	//lashvet:ignore apierr probing the suppression path
	w.WriteHeader(http.StatusTeapot)
}

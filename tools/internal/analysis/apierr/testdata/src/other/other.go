// Package other is outside the server package: the envelope contract does
// not apply, so nothing here is flagged.
package other

import "net/http"

func handle(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "fine here", http.StatusBadRequest)
	w.WriteHeader(http.StatusInternalServerError)
}

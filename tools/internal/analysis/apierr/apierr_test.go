package apierr_test

import (
	"testing"

	"lash/tools/internal/analysis/apierr"
	"lash/tools/internal/analysis/vettest"
)

func TestAPIErr(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), apierr.Analyzer, "server", "other")
}

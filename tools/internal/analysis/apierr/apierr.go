// Package apierr enforces the server package's error-envelope contract
// (package server doc, "writeError is the single chokepoint"): every
// non-2xx HTTP response must be produced through the writeError helper, so
// the uniform {"error": {"code", "message", "retryable"}} envelope cannot
// drift between endpoints. Mechanically, inside the server package (and
// outside writeError itself) the analyzer reports:
//
//   - calls to http.Error — a plain-text error body bypasses the envelope;
//   - calls to a WriteHeader method with a constant status ≥ 400 — a bare
//     error status with a hand-rolled (or missing) body;
//   - calls to writeJSON with a constant status ≥ 400 — a JSON body of
//     some other shape under an error status.
//
// Non-constant statuses are out of scope: they are how writeError and
// writeJSON themselves forward the caller's status.
package apierr

import (
	"go/ast"
	"go/constant"

	"lash/tools/internal/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// Packages are import-path bases whose handlers are checked.
	Packages []string
	// Allowed are function names exempt from the checks (the envelope
	// helper itself).
	Allowed []string
}

// DefaultConfig matches this repository: the server package, with
// writeError as the one sanctioned producer of error responses.
func DefaultConfig() Config {
	return Config{Packages: []string{"server"}, Allowed: []string{"writeError"}}
}

// NewAnalyzer returns an apierr analyzer with the given configuration.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "apierr",
		Doc:  "server handlers produce non-2xx responses only through the writeError envelope helper",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is apierr with DefaultConfig.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	applies := false
	for _, p := range cfg.Packages {
		if analysis.PathBase(pass.Pkg.Path()) == p {
			applies = true
		}
	}
	if !applies {
		return nil
	}
	allowed := make(map[string]bool, len(cfg.Allowed))
	for _, name := range cfg.Allowed {
		allowed[name] = true
	}

	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok {
			return true
		}
		if fd := enclosingFunc(stack); fd != nil && allowed[fd.Name.Name] {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error":
			pass.Reportf(call.Pos(),
				"http.Error bypasses the error envelope; respond through writeError")
		case fn.Name() == "WriteHeader" && len(call.Args) == 1:
			if status, ok := constInt(pass, call.Args[0]); ok && status >= 400 {
				pass.Reportf(call.Pos(),
					"WriteHeader(%d) writes an error status without the error envelope; respond through writeError", status)
			}
		case fn.Name() == "writeJSON" && fn.Pkg() == pass.Pkg && len(call.Args) >= 2:
			if status, ok := constInt(pass, call.Args[1]); ok && status >= 400 {
				pass.Reportf(call.Pos(),
					"writeJSON with error status %d bypasses the error envelope; respond through writeError", status)
			}
		}
		return true
	})
	return nil
}

// enclosingFunc returns the innermost function declaration on the stack.
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// constInt evaluates expr as a constant integer.
func constInt(pass *analysis.Pass, expr ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

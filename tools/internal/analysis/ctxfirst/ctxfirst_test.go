package ctxfirst_test

import (
	"testing"

	"lash/tools/internal/analysis/ctxfirst"
	"lash/tools/internal/analysis/vettest"
)

func TestCtxFirst(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), ctxfirst.Analyzer, "a", "internal/deep", "suppress")
}

// Package deep sits below the API boundary (its import path contains an
// "internal" element), so synthesizing a root context anywhere is flagged.
package deep

import "context"

func start() context.Context {
	return context.Background() // want `context.Background\(\) below the API boundary`
}

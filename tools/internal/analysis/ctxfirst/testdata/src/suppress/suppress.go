// Suppression cases for ctxfirst: directives on the same line and on the
// line above silence the finding; the reason is mandatory.
package suppress

import "context"

func legacy(n int, ctx context.Context) {} //lashvet:ignore ctxfirst frozen wire-compat signature, callers migrated in the v2 API

//lashvet:ignore ctxfirst frozen wire-compat signature, callers migrated in the v2 API
func legacyAbove(n int, ctx context.Context) {}

func stillBad(n int, ctx context.Context) {} // want `context.Context parameter must be first`

// Target package for ctxfirst: parameter order, struct fields, and
// swallowed contexts. Package path "a" is above the API boundary, so
// context.Background is only flagged where a ctx is already in scope.
package a

import "context"

type session struct {
	ctx context.Context // want `context.Context stored in struct session`
}

type job struct { // allowed carrier type
	ctx context.Context
}

type manager struct { // allowed carrier type
	baseCtx context.Context
}

func Good(ctx context.Context, n int) {}

func Bad(n int, ctx context.Context) {} // want `context.Context parameter must be first \(found at position 2\)`

func Doubled(ctx, ctx2 context.Context) {} // want `multiple context.Context parameters`

type handler interface {
	Do(name string, ctx context.Context) // want `context.Context parameter must be first`
}

type fn func(n int, ctx context.Context) // want `context.Context parameter must be first`

func swallow(ctx context.Context) error {
	_ = context.Background() // want `context.Background\(\) inside a function that already receives`
	return nil
}

func swallowNested(ctx context.Context) {
	f := func() {
		_ = context.TODO() // want `context.TODO\(\) inside a function that already receives`
	}
	f()
}

// topLevel has no ctx in scope and "a" is not a deep package: allowed.
func topLevel() context.Context {
	return context.Background()
}

var _ = session{}
var _ = job{}
var _ = manager{}
var _ handler
var _ fn

// Package ctxfirst enforces the repository's context contract (README
// "Cancellation, streaming, and progress"; lash package doc): every layer
// of the mining pipeline is context-first, so cancellation reaches from
// the HTTP handler down to every MapReduce emit point.
//
// The analyzer reports:
//
//  1. A function, method, interface method, or function type with a
//     context.Context parameter anywhere but first.
//  2. A context.Context stored in a struct field, unless the struct is an
//     allowed job/session carrier (by default `job` and `manager`, the
//     server types whose package docs state why they own a context).
//  3. A context.Background()/context.TODO() call below the API boundary —
//     in any package with an `internal` path element or listed in
//     Config.DeepPackages — where the caller's context must be threaded
//     instead.
//  4. A context.Background()/context.TODO() call inside a function that
//     (itself or through an enclosing closure) already receives a ctx:
//     the incoming context is being swallowed.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"lash/tools/internal/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// AllowedStructs are struct type names permitted to hold a
	// context.Context field (lifecycle carriers like the server's job and
	// manager records, whose docs state the derivation contract).
	AllowedStructs []string
	// DeepPackages are import paths below the API boundary in addition to
	// every package with an "internal" path element.
	DeepPackages []string
}

// DefaultConfig matches this repository: the server's job/manager records
// carry contexts, and lash/server sits below the public lash API.
func DefaultConfig() Config {
	return Config{
		AllowedStructs: []string{"job", "manager"},
		DeepPackages:   []string{"lash/server"},
	}
}

// NewAnalyzer returns a ctxfirst analyzer with the given configuration.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "ctxfirst",
		Doc:  "enforce context-first parameters, no context struct fields outside job/session types, and no context.Background/TODO below the API boundary",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is ctxfirst with DefaultConfig.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	allowed := make(map[string]bool, len(cfg.AllowedStructs))
	for _, s := range cfg.AllowedStructs {
		allowed[s] = true
	}
	deep := analysis.PathHasElement(pass.Pkg.Path(), "internal")
	for _, p := range cfg.DeepPackages {
		if pass.Pkg.Path() == p {
			deep = true
		}
	}

	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.FuncType:
			checkParams(pass, n)
		case *ast.StructType:
			checkFields(pass, n, stack, allowed)
		case *ast.CallExpr:
			checkBackground(pass, n, stack, deep)
		}
		return true
	})
	return nil
}

// checkParams reports context.Context parameters that are not first. The
// check applies to every function signature in the package — declarations,
// literals, methods (the receiver does not count), interface methods, and
// named function types.
func checkParams(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter index, counting each name in a grouped field
	for fi, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
			if fi > 0 || pos > 0 {
				pass.Reportf(field.Pos(), "context.Context parameter must be first (found at position %d)", pos+1)
			}
			if n > 1 {
				pass.Reportf(field.Pos(), "multiple context.Context parameters in one signature")
			}
		}
		pos += n
	}
}

// checkFields reports context.Context struct fields outside the allowed
// carrier types.
func checkFields(pass *analysis.Pass, st *ast.StructType, stack []ast.Node, allowed map[string]bool) {
	name := enclosingTypeName(stack)
	if allowed[name] {
		return
	}
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !analysis.IsContextType(tv.Type) {
			continue
		}
		if name == "" {
			pass.Reportf(field.Pos(), "context.Context stored in anonymous struct; pass it as a parameter instead")
			continue
		}
		pass.Reportf(field.Pos(), "context.Context stored in struct %s; contexts are call-scoped — only designated job/session types may carry one", name)
	}
}

// enclosingTypeName finds the TypeSpec name the struct literal belongs to,
// or "" for anonymous structs.
func enclosingTypeName(stack []ast.Node) string {
	for i := len(stack) - 2; i >= 0; i-- {
		if ts, ok := stack[i].(*ast.TypeSpec); ok {
			return ts.Name.Name
		}
	}
	return ""
}

// checkBackground reports context.Background()/TODO() calls that discard
// an available or required caller context.
func checkBackground(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, deep bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	if hasCtxInScope(pass.TypesInfo, stack) {
		pass.Reportf(call.Pos(), "context.%s() inside a function that already receives a context.Context; thread the caller's ctx", fn.Name())
		return
	}
	if deep {
		pass.Reportf(call.Pos(), "context.%s() below the API boundary (package %s); accept and thread the caller's ctx", fn.Name(), pass.Pkg.Path())
	}
}

// hasCtxInScope reports whether any enclosing function declaration or
// literal on the stack takes a context.Context parameter (closures see
// captured contexts too).
func hasCtxInScope(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		var ft *ast.FuncType
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if tv, ok := info.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
				return true
			}
		}
	}
	return false
}

package atomicfield_test

import (
	"testing"

	"lash/tools/internal/analysis/atomicfield"
	"lash/tools/internal/analysis/vettest"
)

func TestAtomicField(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), atomicfield.Analyzer, "a", "suppress")
}

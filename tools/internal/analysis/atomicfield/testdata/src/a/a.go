// Target package for atomicfield: fields touched through sync/atomic must
// never be accessed plainly in the same package.
package a

import "sync/atomic"

type counters struct {
	n    int64
	m    int64
	u    uint32
	safe atomic.Int64 // wrapper type: type-safe by construction, ignored
}

func (c *counters) inc() {
	atomic.AddInt64(&c.n, 1)
	atomic.StoreInt64(&c.m, 2)
	atomic.AddUint32(&c.u, 1)
	c.safe.Add(1)
}

func (c *counters) bad() int64 {
	x := c.n // want `field n is accessed with sync/atomic .* but read plainly`
	c.m = 7  // want `field m is accessed with sync/atomic .* but written plainly`
	c.u++    // want `field u is accessed with sync/atomic .* but written plainly`
	return x + c.safe.Load()
}

func (c *counters) good() int64 {
	return atomic.LoadInt64(&c.n) + atomic.LoadInt64(&c.m) + c.safe.Load()
}

// plain is never accessed atomically, so plain access is fine.
type plain struct{ n int64 }

func (p *plain) inc() { p.n++ }

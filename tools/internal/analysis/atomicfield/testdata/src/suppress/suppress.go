// Suppression case for atomicfield: a plain read under an external lock,
// documented by the directive's reason.
package suppress

import "sync/atomic"

type gauge struct {
	v int64
}

func (g *gauge) set(x int64) { atomic.StoreInt64(&g.v, x) }

func (g *gauge) snapshotLocked() int64 {
	//lashvet:ignore atomicfield callers hold the registry lock here; the atomic store is for lock-free readers only
	return g.v
}

func (g *gauge) stillBad() int64 {
	return g.v // want `field v is accessed with sync/atomic`
}

// Package atomicfield enforces the repository's atomic-access contract
// (internal/obs package doc; internal/mapreduce "shared counters" note):
// once a struct field is accessed through sync/atomic anywhere in a
// package, every other access to that field in the package must also be
// atomic. A plain read of an atomically-written counter is exactly the
// data race the PR 6 Registry hammer test caught dynamically; this
// analyzer catches the same shape at compile time.
//
// Detection is per package: pass one records every field whose address is
// taken as an argument to a sync/atomic function (atomic.AddInt64(&x.n,
// 1), atomic.LoadUint64(&x.v), ...); pass two reports any selector of a
// recorded field that is not itself an operand of a sync/atomic call.
// Fields of the atomic.Int64/Uint64/... wrapper types are type-safe by
// construction and need no analysis — the analyzer also nudges mixed-use
// fields toward those types in its message.
package atomicfield

import (
	"go/ast"
	"go/types"

	"lash/tools/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "struct fields accessed via sync/atomic must never be read or written plainly",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: fields (as canonical *types.Var objects) used atomically,
	// keyed to the position of their first atomic use for the message.
	atomicFields := make(map[*types.Var]ast.Node)
	// Selector expressions that are legitimate atomic operands, so pass 2
	// can skip them.
	atomicUses := make(map[*ast.SelectorExpr]bool)

	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok || !isAtomicCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || unary.Op.String() != "&" {
				continue
			}
			sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field := fieldOf(pass.TypesInfo, sel)
			if field == nil {
				continue
			}
			atomicUses[sel] = true
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = call
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selection of those fields is a plain access.
	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
		if !ok || atomicUses[sel] {
			return true
		}
		field := fieldOf(pass.TypesInfo, sel)
		if field == nil {
			return true
		}
		first, isAtomic := atomicFields[field]
		if !isAtomic {
			return true
		}
		firstPos := pass.Fset.Position(first.Pos())
		verb := "read"
		if isWrite(stack) {
			verb = "written"
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is accessed with sync/atomic (e.g. %s:%d) but %s plainly here; use atomic access everywhere or migrate the field to an atomic.%s",
			field.Name(), firstPos.Filename, firstPos.Line, verb, wrapperFor(field.Type()))
		return true
	})
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldOf resolves sel to the struct field object it selects, or nil for
// methods, package qualifiers, and non-field selections.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isWrite reports whether the selector at the top of the stack is being
// assigned to (including op-assign and ++/--).
func isWrite(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	sel := stack[len(stack)-1]
	switch parent := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if ast.Unparen(lhs) == sel {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(parent.X) == sel
	}
	return false
}

// wrapperFor suggests the sync/atomic wrapper type for a field's type.
func wrapperFor(t types.Type) string {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch basic.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}

// Package analysis is a dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the lashvet analyzers are
// written against. The build environment for this repository forbids
// external module requirements (the root module has zero and the tools
// module keeps zero), so instead of importing x/tools we mirror the small
// slice of its API the suite needs: Analyzer, Pass, Diagnostic, and a
// driver-side suppression filter for `//lashvet:ignore` directives. The
// analyzers themselves are plain Run(*Pass) functions over go/ast +
// go/types, so they would port to the real go/analysis framework by
// swapping this import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lashvet:ignore <name> <reason>` suppression directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run applies the analyzer to one type-checked package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver applies suppression
	// directives after the pass completes.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// WalkStack traverses every node of every file, calling fn with the
// ancestor stack (stack[len(stack)-1] is the current node). Returning
// false prunes the subtree.
func WalkStack(files []*ast.File, fn func(stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(stack) {
				stack = stack[:len(stack)-1] // Inspect will not send the pop
				return false
			}
			return true
		})
	}
}

// IgnorePrefix is the suppression directive marker. A directive has the
// form
//
//	//lashvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// and suppresses the named analyzers' diagnostics on the directive's line
// and on the line immediately below it (so it can sit on its own line
// above the flagged statement or trail the statement itself). The reason
// is mandatory: a directive without one is itself reported by the driver.
const IgnorePrefix = "//lashvet:ignore"

// Directive is one parsed //lashvet:ignore comment.
type Directive struct {
	Pos       token.Pos
	Line      int // line the directive sits on
	Analyzers []string
	Reason    string
}

// ParseDirectives extracts every //lashvet:ignore directive from the
// files' comments. Malformed directives (no analyzer list or no reason)
// are returned in bad.
func ParseDirectives(fset *token.FileSet, files []*ast.File) (dirs []Directive, bad []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lashvet:ignorefoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed lashvet:ignore directive: want `//lashvet:ignore <analyzer> <reason>`",
					})
					continue
				}
				dirs = append(dirs, Directive{
					Pos:       c.Pos(),
					Line:      fset.Position(c.Pos()).Line,
					Analyzers: strings.Split(fields[0], ","),
					Reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// Suppressed reports whether a diagnostic of the named analyzer at pos is
// covered by one of the directives: same file line, or the line directly
// above the diagnostic.
func Suppressed(fset *token.FileSet, dirs []Directive, name string, pos token.Pos) bool {
	if len(dirs) == 0 {
		return false
	}
	p := fset.Position(pos)
	for _, d := range dirs {
		dp := fset.Position(d.Pos)
		if dp.Filename != p.Filename {
			continue
		}
		if d.Line != p.Line && d.Line != p.Line-1 {
			continue
		}
		for _, a := range d.Analyzers {
			if a == name {
				return true
			}
		}
	}
	return false
}

// PathHasElement reports whether the slash-separated import path contains
// elem as a whole element ("lash/internal/obs" has "internal").
func PathHasElement(path, elem string) bool {
	for _, e := range strings.Split(path, "/") {
		if e == elem {
			return true
		}
	}
	return false
}

// PathBase returns the last element of an import path.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// NamedOf unwraps pointers and aliases down to the named type, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// TypeFromPkg reports whether t (after unwrapping pointers) is the named
// type pkgBase.typeName, where pkgBase matches the defining package's
// import-path base — so "obs.Registry" matches both the real
// lash/internal/obs and a testdata stub package imported as plain "obs".
func TypeFromPkg(t types.Type, pkgBase, typeName string) bool {
	named := NamedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return PathBase(obj.Pkg().Path()) == pkgBase
}

// FuncFromPkg resolves a call expression's callee and reports whether it
// is the function (or method) pkgBase.name — pkgBase matched against the
// import-path base of the defining package, name against the function
// name ("RunAgg", "Stream", ...).
func FuncFromPkg(info *types.Info, call *ast.CallExpr, pkgBase string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || PathBase(fn.Pkg().Path()) != pkgBase {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// CalleeFunc resolves the *types.Func a call expression invokes (static
// calls and method calls), or nil for calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation: Run[I, K, V, R](...)
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	case *ast.IndexListExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Package core has a hot import-path base: any registration/lookup call is
// flagged, even in constructors — hot layers receive bound handles.
package core

import "obs"

func NewPipeline(r *obs.Registry) *obs.Counter {
	return r.Counter("items", "items processed") // want `obs Registry.Counter call in hot package core`
}

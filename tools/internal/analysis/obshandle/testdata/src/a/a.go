// Target package for obshandle outside the hot layers: registration is
// allowed in constructors/init and at package level, flagged in loops and
// ordinary functions.
package a

import "obs"

type metrics struct {
	reqs *obs.Counter
}

// New registers once and binds handles: allowed.
func New(r *obs.Registry) *metrics {
	m := &metrics{reqs: r.Counter("reqs", "requests")}
	r.OnScrape(func() {})
	return m
}

func init() {
	var r obs.Registry
	_ = r.Gauge("g", "h")
}

// handle records on the pre-bound handle: allowed.
func handle(m *metrics) {
	m.reqs.Inc()
}

func perRequest(r *obs.Registry) {
	r.Counter("reqs", "requests").Inc() // want `obs Registry.Counter call outside a constructor/init \(in perRequest\)`
}

func loopRegister(r *obs.Registry) []*obs.Gauge {
	var out []*obs.Gauge
	for i := 0; i < 3; i++ {
		out = append(out, r.Gauge("g", "h")) // want `obs Registry.Gauge call inside a loop`
	}
	return out
}

// NewLoop is a constructor, but loops still dominate: the loop rule wins.
func NewLoop(r *obs.Registry) {
	for i := 0; i < 3; i++ {
		r.OnScrape(func() {}) // want `obs Registry.OnScrape call inside a loop`
	}
}

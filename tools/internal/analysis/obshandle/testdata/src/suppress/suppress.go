// Suppression case for obshandle: lazily populated label spaces outside
// the mining hot path may keep registry lookups with a stated reason.
package suppress

import "obs"

func record(r *obs.Registry, method string) {
	//lashvet:ignore obshandle lazy label-space population, bounded by the route table; serving is not the mining hot path
	r.Counter("http_requests", "served", "method", method).Inc()
}

func stillBad(r *obs.Registry) {
	r.Counter("oops", "unsuppressed").Inc() // want `obs Registry.Counter call outside a constructor/init`
}

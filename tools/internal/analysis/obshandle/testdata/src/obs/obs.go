// Package obs is a testdata stub mirroring the registration surface of
// lash/internal/obs. The analyzers match by import-path base, so this stub
// exercises exactly the production code paths.
package obs

type Registry struct{}

type Counter struct{}

func (c *Counter) Add(int64) {}
func (c *Counter) Inc()      {}

type Gauge struct{}

func (g *Gauge) Set(float64) {}

type Histogram struct{}

func (h *Histogram) Observe(float64) {}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge     { return &Gauge{} }
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
func (r *Registry) OnScrape(fn func()) {}

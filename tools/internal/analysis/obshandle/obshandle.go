// Package obshandle enforces the repository's hot-path handle contract
// (internal/obs package doc; PR 6's zero-alloc requirement): obs Registry
// registration/lookup calls — Counter, Gauge, Histogram, OnScrape — hash
// names and take the registry lock, so they belong in constructors and
// init, never in loops and never anywhere in the map/reduce/mine hot
// packages. Record-time code must use pre-bound handles (Counter.Add,
// Gauge.Set, ...), which are one or two atomics each.
//
// The analyzer reports a Registry registration/lookup call that is
//
//  1. anywhere inside a hot package (by default any package whose
//     import-path base is mapreduce, miner, core, or gsm — the layers
//     reachable from the mining inner loops), or
//  2. inside a for/range loop, or
//  3. in a function that is not a constructor: allowed are init, main,
//     New*/new* functions, Register*/register*/instrument* helpers, and
//     package-level variable initializers.
//
// The package that defines Registry is exempt — its method bodies are the
// implementation being wrapped, not a use site.
package obshandle

import (
	"go/ast"

	"lash/tools/internal/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// HotPackages are import-path bases in which any registration/lookup
	// call is reported regardless of position.
	HotPackages []string
}

// DefaultConfig matches this repository's hot layers.
func DefaultConfig() Config {
	return Config{HotPackages: []string{"mapreduce", "miner", "core", "gsm"}}
}

// registryMethods are the obs.Registry methods that hash and lock.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"OnScrape":  true,
}

// NewAnalyzer returns an obshandle analyzer with the given configuration.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "obshandle",
		Doc:  "obs Registry registration/lookup only in constructors/init — never in loops or hot-path packages; record through pre-bound handles",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is obshandle with DefaultConfig.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	// The defining package's own method bodies are the implementation.
	if pass.Pkg.Scope().Lookup("Registry") != nil && analysis.PathBase(pass.Pkg.Path()) == "obs" {
		return nil
	}
	hot := false
	for _, h := range cfg.HotPackages {
		if analysis.PathBase(pass.Pkg.Path()) == h {
			hot = true
		}
	}

	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := registryMethodCall(pass, call)
		if !ok {
			return true
		}
		switch {
		case hot:
			pass.Reportf(call.Pos(),
				"obs Registry.%s call in hot package %s; register once at construction and pass the handle in",
				name, pass.Pkg.Path())
		case inLoop(stack):
			pass.Reportf(call.Pos(),
				"obs Registry.%s call inside a loop; registration hashes and locks — hoist to a constructor and reuse the handle",
				name)
		case !inConstructor(stack):
			pass.Reportf(call.Pos(),
				"obs Registry.%s call outside a constructor/init (in %s); register once and record through the pre-bound handle",
				name, enclosingFuncName(stack))
		}
		return true
	})
	return nil
}

// registryMethodCall reports whether call invokes a registration/lookup
// method on an obs.Registry receiver, returning the method name.
func registryMethodCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.TypeFromPkg(tv.Type, "obs", "Registry") {
		return "", false
	}
	return sel.Sel.Name, true
}

// inLoop reports whether the innermost enclosing statement context within
// the current function is a for or range loop.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl:
			return false
			// A func literal inside a loop still runs per iteration when
			// called there, so keep scanning past *ast.FuncLit.
		}
	}
	return false
}

// inConstructor reports whether the call sits in a function whose job is
// one-time wiring: init, main, New*/new*, Register*/register*,
// instrument*, or a package-level variable initializer (no enclosing
// function at all).
func inConstructor(stack []ast.Node) bool {
	name := enclosingFuncName(stack)
	if name == "" {
		return true // package-level var initializer
	}
	switch {
	case name == "init" || name == "main":
		return true
	case hasPrefix(name, "New") || hasPrefix(name, "new"):
		return true
	case hasPrefix(name, "Register") || hasPrefix(name, "register"):
		return true
	case hasPrefix(name, "instrument") || hasPrefix(name, "Instrument"):
		return true
	}
	return false
}

// enclosingFuncName names the innermost FuncDecl on the stack, or "" at
// package level.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 2; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

package obshandle_test

import (
	"testing"

	"lash/tools/internal/analysis/obshandle"
	"lash/tools/internal/analysis/vettest"
)

func TestObsHandle(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), obshandle.Analyzer, "a", "core", "suppress")
}

package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"lash/tools/internal/analysis"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	fset, files := parse(t, `package p

//lashvet:ignore ctxfirst reason one
var a int

//lashvet:ignore ctxfirst,emitgo shared reason
var b int

//lashvet:ignore
var c int

//lashvet:ignore obshandle
var d int

//lashvet:ignoreother not ours at all
var e int
`)
	dirs, bad := analysis.ParseDirectives(fset, files)
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(dirs), dirs)
	}
	if dirs[0].Reason != "reason one" || len(dirs[0].Analyzers) != 1 || dirs[0].Analyzers[0] != "ctxfirst" {
		t.Errorf("directive 0 parsed wrong: %+v", dirs[0])
	}
	if len(dirs[1].Analyzers) != 2 || dirs[1].Analyzers[1] != "emitgo" || dirs[1].Reason != "shared reason" {
		t.Errorf("directive 1 parsed wrong: %+v", dirs[1])
	}
	// Bare directive and analyzer-without-reason are both malformed;
	// //lashvet:ignoreother is not a directive at all.
	if len(bad) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %+v", len(bad), bad)
	}
}

func TestSuppressedLineScope(t *testing.T) {
	fset, files := parse(t, `package p

//lashvet:ignore ctxfirst the line below is covered
var a int
var b int
`)
	dirs, bad := analysis.ParseDirectives(fset, files)
	if len(bad) != 0 || len(dirs) != 1 {
		t.Fatalf("parse: dirs=%v bad=%v", dirs, bad)
	}
	posOnLine := func(line int) token.Pos {
		return fset.File(dirs[0].Pos).LineStart(line)
	}
	if !analysis.Suppressed(fset, dirs, "ctxfirst", posOnLine(3)) {
		t.Error("same line not suppressed")
	}
	if !analysis.Suppressed(fset, dirs, "ctxfirst", posOnLine(4)) {
		t.Error("line below not suppressed")
	}
	if analysis.Suppressed(fset, dirs, "ctxfirst", posOnLine(5)) {
		t.Error("two lines below wrongly suppressed")
	}
	if analysis.Suppressed(fset, dirs, "emitgo", posOnLine(4)) {
		t.Error("other analyzer wrongly suppressed")
	}
}

func TestPathHelpers(t *testing.T) {
	if !analysis.PathHasElement("lash/internal/obs", "internal") {
		t.Error("internal element not found")
	}
	if analysis.PathHasElement("lash/internals/obs", "internal") {
		t.Error("substring wrongly matched as element")
	}
	if analysis.PathBase("lash/internal/obs") != "obs" {
		t.Error("PathBase failed")
	}
	if analysis.PathBase("obs") != "obs" {
		t.Error("PathBase failed on bare path")
	}
}

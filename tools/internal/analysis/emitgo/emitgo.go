// Package emitgo enforces the serialized-emit contract (internal/mapreduce
// package doc; lash.Stream doc): emit/progress/stream callbacks handed to
// Map, Combine, and Reduce functions — and the callbacks callers pass into
// mapreduce.Run*, Miner.Mine*, and lash.Stream — are invoked serially by
// the framework and are only valid for the duration of the call. User code
// must therefore never invoke such a callback from a `go` statement, hand
// it to a goroutine, store it in a struct field, global, map, slice, or
// channel for later use, or return it.
//
// Mechanically, the analyzer treats every function-typed parameter named
// `emit`, `progress`, or `onEmit` as a serialized callback (those are the
// contract-bearing names throughout the mapreduce/core/miner layers), plus
// any local alias of one (x := emit). Inside the owning function it
// reports:
//
//   - any use of the callback anywhere inside a `go` statement — direct
//     call, capture by the spawned literal, or passing as an argument;
//   - assignments that let the callback outlive the call: stores to
//     struct fields, globals, map/slice elements, composite literals,
//     channel sends, and returns.
//
// Synchronous uses — calling the callback, passing it to an ordinary
// (non-go) call, aliasing it to a local — are allowed.
package emitgo

import (
	"go/ast"
	"go/types"

	"lash/tools/internal/analysis"
)

// Config tunes the analyzer.
type Config struct {
	// Names are parameter names that mark a function-typed parameter as a
	// serialized callback.
	Names []string
}

// DefaultConfig matches the repository's callback naming contract.
func DefaultConfig() Config {
	return Config{Names: []string{"emit", "progress", "onEmit"}}
}

// NewAnalyzer returns an emitgo analyzer with the given configuration.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "emitgo",
		Doc:  "emit/progress callbacks are serialized: never invoke them from go statements or store them for later goroutine use",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is emitgo with DefaultConfig.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	names := make(map[string]bool, len(cfg.Names))
	for _, n := range cfg.Names {
		names[n] = true
	}
	analysis.WalkStack(pass.Files, func(stack []ast.Node) bool {
		var ft *ast.FuncType
		var body *ast.BlockStmt
		switch n := stack[len(stack)-1].(type) {
		case *ast.FuncDecl:
			ft, body = n.Type, n.Body
		case *ast.FuncLit:
			ft, body = n.Type, n.Body
		default:
			return true
		}
		if body == nil || ft.Params == nil {
			return true
		}
		tracked := serializedParams(pass.TypesInfo, ft, names)
		if len(tracked) > 0 {
			checkBody(pass, body, tracked)
		}
		return true
	})
	return nil
}

// serializedParams collects the parameter objects of ft whose name is a
// contract-bearing callback name and whose type is a function type.
func serializedParams(info *types.Info, ft *ast.FuncType, names map[string]bool) map[types.Object]bool {
	tracked := make(map[types.Object]bool)
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if !names[name.Name] {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				tracked[obj] = true
			}
		}
	}
	return tracked
}

// checkBody reports contract violations for the tracked callbacks within
// one function body. Nested function literals that declare their own
// serialized params are handled by their own run() visit; here, nested
// literals matter only insofar as they capture *this* function's params,
// which object-identity tracking resolves naturally.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, tracked map[types.Object]bool) {
	collectAliases(pass.TypesInfo, body, tracked)

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch node := n.(type) {
		case *ast.GoStmt:
			if id := firstTrackedIdent(pass.TypesInfo, node, tracked); id != nil {
				pass.Reportf(node.Pos(),
					"serialized callback %s used inside a go statement; the emit contract requires synchronous invocation from the calling goroutine",
					id.Name)
				stack = stack[:len(stack)-1]
				return false // one report per go statement
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[node]; obj != nil && tracked[obj] {
				checkEscape(pass, stack, node)
			}
		}
		return true
	})
}

// collectAliases adds local variables directly bound to a tracked callback
// (x := emit; var y = x) to the tracked set, iterating to a small fixpoint
// for alias-of-alias chains.
func collectAliases(info *types.Info, body *ast.BlockStmt, tracked map[types.Object]bool) {
	for range 4 {
		added := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				if len(node.Lhs) != len(node.Rhs) {
					return true
				}
				for i, rhs := range node.Rhs {
					id, ok := ast.Unparen(rhs).(*ast.Ident)
					if !ok || info.Uses[id] == nil || !tracked[info.Uses[id]] {
						continue
					}
					lhs, ok := ast.Unparen(node.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					if obj := info.Defs[lhs]; obj != nil && !tracked[obj] {
						tracked[obj] = true
						added = true
					}
				}
			case *ast.ValueSpec:
				for i, v := range node.Values {
					if i >= len(node.Names) {
						break
					}
					id, ok := ast.Unparen(v).(*ast.Ident)
					if !ok || info.Uses[id] == nil || !tracked[info.Uses[id]] {
						continue
					}
					if obj := info.Defs[node.Names[i]]; obj != nil && !tracked[obj] {
						tracked[obj] = true
						added = true
					}
				}
			}
			return true
		})
		if !added {
			return
		}
	}
}

// firstTrackedIdent returns the first identifier under n that uses a
// tracked callback, or nil.
func firstTrackedIdent(info *types.Info, n ast.Node, tracked map[types.Object]bool) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(n, func(m ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && tracked[obj] {
				found = id
				return false
			}
		}
		return true
	})
	return found
}

// checkEscape reports uses of a tracked callback ident that let it outlive
// the owning call: non-local assignment targets, composite literals,
// channel sends, and returns.
func checkEscape(pass *analysis.Pass, stack []ast.Node, id *ast.Ident) {
	if len(stack) < 2 {
		return
	}
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.AssignStmt:
			// Only RHS occurrences can escape; locate the paired LHS.
			for j, rhs := range parent.Rhs {
				if !contains(rhs, id) {
					continue
				}
				if j < len(parent.Lhs) && len(parent.Lhs) == len(parent.Rhs) {
					if lhs, ok := ast.Unparen(parent.Lhs[j]).(*ast.Ident); ok {
						if lhs.Name == "_" {
							return // discarded, cannot escape
						}
						if obj := pass.TypesInfo.Defs[lhs]; obj != nil {
							return // alias declaration, tracked separately
						}
						if obj := pass.TypesInfo.Uses[lhs]; obj != nil && isLocalVar(pass, obj) {
							return // reassignment of a local, still tracked
						}
					}
				}
				pass.Reportf(id.Pos(),
					"serialized callback %s stored outside the call (assignment target is not a local variable); it must not outlive the Run/Mine/Stream call",
					id.Name)
				return
			}
			return
		case *ast.CompositeLit:
			pass.Reportf(id.Pos(),
				"serialized callback %s stored in a composite literal; it must not outlive the Run/Mine/Stream call", id.Name)
			return
		case *ast.SendStmt:
			if contains(parent.Value, id) {
				pass.Reportf(id.Pos(),
					"serialized callback %s sent on a channel; it must not outlive the Run/Mine/Stream call", id.Name)
			}
			return
		case *ast.ReturnStmt:
			pass.Reportf(id.Pos(),
				"serialized callback %s returned from the function; it must not outlive the Run/Mine/Stream call", id.Name)
			return
		case *ast.CallExpr, *ast.ExprStmt, *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.FuncLit, *ast.FuncDecl:
			// Calling it, passing it synchronously, or plain statement
			// context: allowed. Stop climbing at expression/statement
			// boundaries that cannot smuggle the value out.
			return
		}
	}
}

// contains reports whether id occurs within expr.
func contains(expr ast.Node, id *ast.Ident) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if n == id {
			found = true
		}
		return !found
	})
	return found
}

// isLocalVar reports whether obj is a function-local variable (not a
// field, not package-level).
func isLocalVar(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != pass.Pkg.Scope() && v.Parent() != nil
}

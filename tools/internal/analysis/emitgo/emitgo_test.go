package emitgo_test

import (
	"testing"

	"lash/tools/internal/analysis/emitgo"
	"lash/tools/internal/analysis/vettest"
)

func TestEmitGo(t *testing.T) {
	vettest.Run(t, vettest.TestData(t), emitgo.Analyzer, "a", "suppress")
}

// Target package for emitgo: serialized emit/progress callbacks must not
// cross goroutines or outlive their call.
package a

type sink struct{ cb func(int) }

var global func(int)

func mapper(item int, emit func(int)) {
	emit(item)   // synchronous call: allowed
	helper(emit) // synchronous pass-through: allowed
	e := emit
	e(item) // local alias: allowed

	go emit(item)              // want `serialized callback emit used inside a go statement`
	go func() { emit(item) }() // want `serialized callback emit used inside a go statement`
	go helper(e)               // want `serialized callback e used inside a go statement`

	s := &sink{}
	s.cb = emit        // want `serialized callback emit stored outside the call`
	global = e         // want `serialized callback e stored outside the call`
	_ = sink{cb: emit} // want `serialized callback emit stored in a composite literal`
	ch := make(chan func(int), 1)
	ch <- emit // want `serialized callback emit sent on a channel`
	<-ch
}

func helper(f func(int)) {}

func ret(emit func(int)) func(int) {
	return emit // want `serialized callback emit returned from the function`
}

func progressLoop(progress func(done int), n int) {
	for i := 0; i < n; i++ {
		progress(i) // allowed
	}
}

// notTracked is a func-typed parameter without a contract-bearing name:
// storing it is fine.
func notTracked(cb func(int)) {
	global = cb
}

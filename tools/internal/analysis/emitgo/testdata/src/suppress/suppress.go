// Suppression case for emitgo: call-scoped traversal state may hold the
// callback with a stated reason.
package suppress

type run struct{ emit func(int) }

func Mine(items []int, emit func(int)) {
	//lashvet:ignore emitgo run is call-scoped traversal state; Mine returns before the struct is released
	r := &run{emit: emit}
	for _, it := range items {
		r.emit(it)
	}
}

func MineBad(items []int, emit func(int)) *run {
	return &run{emit: emit} // want `serialized callback emit stored in a composite literal`
}

// Command lashvet runs the lash project-invariant analyzers:
//
//	ctxfirst    context-first parameters, no stored/synthesized contexts
//	atomicfield no plain access to atomically-accessed struct fields
//	obshandle   obs Registry registration only in constructors/init
//	emitgo      serialized emit/progress callbacks never cross goroutines
//	errjob      %w-wrapped, job/phase-annotated errors at the boundary
//	faultpoint  fault-injection points are constant, package-prefixed, unique names
//	apierr      server handlers respond non-2xx only through the writeError envelope
//
// It runs in two modes:
//
// Standalone (the `make lint` gate):
//
//	lashvet [-dir dir] [packages...]
//
// loads the packages (default ./...) via `go list -export`, runs every
// analyzer, prints findings as file:line:col: [analyzer] message, and
// exits 1 if there were any.
//
// Vet tool:
//
//	go vet -vettool=$(which lashvet) ./...
//
// implements the cmd/vet unitchecker protocol (-V=full, -flags, and the
// per-package .cfg invocation). Diagnostics in _test.go files are skipped
// in both modes: the invariants are production-code contracts.
//
// Findings are suppressed by a directive on the same line or the line
// above:
//
//	//lashvet:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; malformed directives are themselves reported.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lash/tools/internal/analysis"
	"lash/tools/internal/analysis/apierr"
	"lash/tools/internal/analysis/atomicfield"
	"lash/tools/internal/analysis/ctxfirst"
	"lash/tools/internal/analysis/emitgo"
	"lash/tools/internal/analysis/errjob"
	"lash/tools/internal/analysis/faultpoint"
	"lash/tools/internal/analysis/load"
	"lash/tools/internal/analysis/obshandle"
)

const version = "1.0.0"

// suite is every analyzer lashvet runs, in reporting order.
var suite = []*analysis.Analyzer{
	ctxfirst.Analyzer,
	atomicfield.Analyzer,
	obshandle.Analyzer,
	emitgo.Analyzer,
	errjob.Analyzer,
	faultpoint.Analyzer,
	apierr.Analyzer,
}

func main() {
	args := os.Args[1:]
	// cmd/vet unitchecker protocol: version probe, flag probe, then one
	// .cfg invocation per package.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Printf("lashvet version %s\n", version)
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitMain(args[0]))
		}
	}

	fs := flag.NewFlagSet("lashvet", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to resolve packages from")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lashvet [-dir dir] [packages...]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := runStandalone(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lashvet:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// finding is one reported, unsuppressed diagnostic.
type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

// runStandalone loads patterns from dir and applies the suite.
func runStandalone(dir string, patterns []string) ([]finding, error) {
	prog, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []finding
	for _, p := range prog.Targets {
		fs, err := analyzePackage(prog.Fset, p.Files, p.Pkg, p.Info)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// analyzePackage runs every analyzer over one type-checked package,
// applies //lashvet:ignore suppression, reports malformed directives, and
// drops findings in _test.go files. Results are position-sorted.
func analyzePackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]finding, error) {
	dirs, bad := analysis.ParseDirectives(fset, files)
	var out []finding
	add := func(name string, d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			return
		}
		pos.Filename = relify(pos.Filename)
		out = append(out, finding{pos: pos, analyzer: name, msg: d.Message})
	}
	for _, a := range suite {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
		for _, d := range diags {
			if analysis.Suppressed(fset, dirs, a.Name, d.Pos) {
				continue
			}
			add(a.Name, d)
		}
	}
	for _, d := range bad {
		add("lashvet", d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// relify shortens an absolute filename to be relative to the working
// directory when that is tidier.
func relify(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

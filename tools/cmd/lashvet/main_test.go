package main

import (
	"strings"
	"testing"
)

// TestSmokeBadModule runs the whole multichecker, via the same loader the
// standalone binary uses, over a known-bad module and checks that every
// analyzer fires and that the suppression directive holds.
func TestSmokeBadModule(t *testing.T) {
	findings, err := runStandalone("testdata/badmod", []string{"./..."})
	if err != nil {
		t.Fatalf("runStandalone: %v", err)
	}
	byAnalyzer := make(map[string]int)
	for _, f := range findings {
		byAnalyzer[f.analyzer]++
		t.Logf("%s: [%s] %s", f.pos, f.analyzer, f.msg)
	}
	want := map[string]int{
		"ctxfirst":    1, // Mine's out-of-order ctx; MineLegacy is suppressed
		"atomicfield": 1, // plain read of total.emitted
		"obshandle":   1, // registry lookup in hot package core
		"emitgo":      1, // go emit(it)
		"errjob":      2, // %v-flattened cause + missing "core:" prefix
	}
	for name, n := range want {
		if byAnalyzer[name] != n {
			t.Errorf("analyzer %s: got %d findings, want %d", name, byAnalyzer[name], n)
		}
	}
	for name := range byAnalyzer {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected findings from %q", name)
		}
	}
	for _, f := range findings {
		if strings.Contains(f.msg, "MineLegacy") || (f.analyzer == "ctxfirst" && f.pos.Line == 20) {
			t.Errorf("suppressed finding surfaced: %s: %s", f.pos, f.msg)
		}
	}
}

// TestCleanTree asserts the repository itself stays lashvet-clean — the
// same invariant `make lint` gates on.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole root module")
	}
	for name, dir := range map[string]string{"root": "../../..", "tools": "../.."} {
		findings, err := runStandalone(dir, []string{"./..."})
		if err != nil {
			t.Fatalf("runStandalone over %s module: %v", name, err)
		}
		for _, f := range findings {
			t.Errorf("%s module: %s: [%s] %s", name, f.pos, f.analyzer, f.msg)
		}
	}
}

// Package core packs one violation of every lashvet analyzer into a
// boundary+hot package, plus one suppressed finding, for the multichecker
// smoke test.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"badmod/obs"
)

// ctxfirst: parameter out of order.
func Mine(name string, ctx context.Context) error {
	return run(ctx, name)
}

// ctxfirst (suppressed): same shape, with a justified directive.
func MineLegacy(name string, ctx context.Context) error { //lashvet:ignore ctxfirst frozen signature kept for the smoke test
	return run(ctx, name)
}

type stats struct {
	emitted int64
}

var total stats

func run(ctx context.Context, name string) error {
	// atomicfield: plain read of an atomically-written field.
	atomic.AddInt64(&total.emitted, 1)
	if total.emitted > 1_000_000 {
		// errjob: unannotated, unwrapped error at the boundary.
		return fmt.Errorf("too much output from %s: %v", name, ctx.Err())
	}
	return nil
}

// obshandle: registry lookup in a hot package.
func record(r *obs.Registry) {
	r.Counter("items", "items").Inc()
}

// emitgo: callback crosses a goroutine.
func mapOver(items []int, emit func(int)) {
	for _, it := range items {
		go emit(it)
	}
}

var _ = record
var _ = mapOver

// Package obs is a stub registry so badmod/core can violate obshandle.
package obs

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

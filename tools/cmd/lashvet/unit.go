// Unitchecker-protocol half of lashvet: cmd/vet drives analysis tools by
// handing them a JSON config per package with pre-resolved import maps and
// compiler export data; the tool type-checks from that, reports plain
// file:line:col diagnostics on stderr, and exits 2 when it found
// something. This mirrors x/tools' unitchecker without depending on it.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"

	"lash/tools/internal/analysis/load"
)

// vetConfig is the subset of cmd/vet's per-package JSON config lashvet
// consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitMain runs one vet unit and returns the process exit code: 0 clean,
// 1 operational failure, 2 findings (the cmd/vet convention).
func unitMain(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lashvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lashvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// lashvet produces no facts, but vet requires the output file to
	// exist for caching and for dependents' PackageVetx maps.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "lashvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	findings, err := analyzeUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "lashvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// analyzeUnit parses and type-checks one vet unit from its config and
// applies the analyzer suite.
func analyzeUnit(cfg *vetConfig) ([]finding, error) {
	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := load.NewInfo()
	tconf := types.Config{
		Importer: load.ExportImporter(fset, lookup),
		Error:    func(error) {},
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}
	return analyzePackage(fset, files, pkg, info)
}

module lash/tools

go 1.24

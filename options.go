package lash

import (
	"fmt"
	"strings"
)

// Validate checks that o is a well-formed mining configuration and returns a
// descriptive error for the first violated constraint. Mine and Miner.Mine
// call it before doing any work; servers can call it earlier to reject bad
// requests at the API boundary.
func (o Options) Validate() error {
	if o.MinSupport < 1 {
		return fmt.Errorf("lash: MinSupport must be ≥ 1, got %d", o.MinSupport)
	}
	if o.MaxGap < 0 {
		return fmt.Errorf("lash: MaxGap must be ≥ 0, got %d", o.MaxGap)
	}
	if o.MaxLength < 2 {
		return fmt.Errorf("lash: MaxLength must be ≥ 2, got %d", o.MaxLength)
	}
	if o.Workers < 0 {
		return fmt.Errorf("lash: Workers must be ≥ 0, got %d", o.Workers)
	}
	if o.MaxIntermediate < 0 {
		return fmt.Errorf("lash: MaxIntermediate must be ≥ 0, got %d", o.MaxIntermediate)
	}
	if o.MemoryBudget < 0 {
		return fmt.Errorf("lash: MemoryBudget must be ≥ 0, got %d", o.MemoryBudget)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("lash: Deadline must be ≥ 0, got %v", o.Deadline)
	}
	if o.MaxAttempts < 0 {
		return fmt.Errorf("lash: MaxAttempts must be ≥ 0, got %d", o.MaxAttempts)
	}
	switch o.Algorithm {
	case AlgorithmLASH, AlgorithmNaive, AlgorithmSemiNaive, AlgorithmMGFSM, AlgorithmLASHFlat:
	default:
		return fmt.Errorf("lash: unknown algorithm %d", int(o.Algorithm))
	}
	switch o.LocalMiner {
	case MinerPSM, MinerPSMNoIndex, MinerBFS, MinerDFS:
	default:
		return fmt.Errorf("lash: unknown local miner %d", int(o.LocalMiner))
	}
	// AlgorithmMGFSM is defined as item-based partitioning with the BFS
	// local miner (§6.3): it never consults Options.LocalMiner. Accept only
	// the zero value (MinerPSM doubles as "unset") and the miner it actually
	// runs, and reject contradictory combinations instead of silently
	// overriding them. This keeps Validate, Canonical, and Mine in
	// agreement: every accepted combination canonicalizes to the same key
	// and mines with BFS.
	if o.Algorithm == AlgorithmMGFSM {
		switch o.LocalMiner {
		case MinerPSM, MinerBFS:
		default:
			return fmt.Errorf("lash: AlgorithmMGFSM always mines with MinerBFS; contradictory LocalMiner %s (leave it unset)", o.LocalMiner)
		}
	}
	switch o.Restriction {
	case RestrictNone, RestrictClosed, RestrictMaximal:
	default:
		return fmt.Errorf("lash: unknown restriction %d", int(o.Restriction))
	}
	return nil
}

// ValidateStream checks that o is a well-formed configuration for a
// streaming run (Stream and Miner.Stream call it): everything Validate
// checks, plus the restrictions that post-process the full pattern set —
// RestrictClosed and RestrictMaximal — are rejected, because a streaming
// run never materializes that set.
func (o Options) ValidateStream() error {
	if err := o.Validate(); err != nil {
		return err
	}
	if o.Restriction != RestrictNone {
		return fmt.Errorf("lash: restriction %q needs the full pattern set and cannot be streamed (use MineContext, or RestrictNone)", o.Restriction)
	}
	if o.Capture {
		return fmt.Errorf("lash: Capture needs the full per-partition output and cannot be streamed (use MineContext)")
	}
	if o.Resume != nil {
		return fmt.Errorf("lash: Resume splices previous partition results and cannot be streamed (use MineContext)")
	}
	return nil
}

// Canonical returns o with every field that cannot affect Mine's output
// normalized to its zero value: Workers (a pure parallelism knob), the
// observability hooks (Progress, Trace, Metrics), MemoryBudget (an
// execution-mode knob — the spill path is differential-tested
// byte-identical to the in-memory path), and the robustness knobs
// (Deadline, MaxAttempts, Faults — retried runs are differential-tested
// byte-identical to fault-free runs, and deadlines only decide whether a
// run finishes, not what it outputs) are always zeroed, LocalMiner is
// zeroed for algorithms that do not run a local miner, and MaxIntermediate
// is zeroed for algorithms that never emit intermediate records. Two valid
// Options values with equal canonical forms produce identical results on
// the same database.
func (o Options) Canonical() Options {
	o.Workers = 0
	o.Progress = nil
	o.Trace = nil
	o.Metrics = nil
	o.MemoryBudget = 0
	o.Deadline = 0
	o.MaxAttempts = 0
	o.Faults = nil
	// Capture only adds State to the result; Resume is differential-tested
	// byte-identical to a from-scratch mine. Neither affects the output.
	o.Capture = false
	o.Resume = nil
	switch o.Algorithm {
	case AlgorithmLASH, AlgorithmLASHFlat:
		o.MaxIntermediate = 0
	case AlgorithmMGFSM:
		o.MaxIntermediate = 0
		o.LocalMiner = 0
	default: // baselines: no local miner
		o.LocalMiner = 0
	}
	return o
}

// CacheKey returns a stable, order-independent string identifying Mine's
// output for these options. It is the canonical form rendered field by
// field, so it is safe to persist and to use as a result-cache key across
// processes (cmd/lashd does).
func (o Options) CacheKey() string {
	c := o.Canonical()
	return fmt.Sprintf("s%d,g%d,l%d,alg%d,m%d,i%d,r%d",
		c.MinSupport, c.MaxGap, c.MaxLength,
		int(c.Algorithm), int(c.LocalMiner), c.MaxIntermediate, int(c.Restriction))
}

// ParseAlgorithm maps a user-facing algorithm name (as accepted by the CLI
// and the lashd API) to an Algorithm. The empty string selects the default,
// AlgorithmLASH. Matching is case-insensitive.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "lash":
		return AlgorithmLASH, nil
	case "naive":
		return AlgorithmNaive, nil
	case "seminaive", "semi-naive":
		return AlgorithmSemiNaive, nil
	case "mgfsm", "mg-fsm":
		return AlgorithmMGFSM, nil
	case "lashflat", "lash-flat", "lash(flat)":
		return AlgorithmLASHFlat, nil
	}
	return 0, fmt.Errorf("lash: unknown algorithm %q (want lash, naive, seminaive, mgfsm or lashflat)", s)
}

// ParseLocalMiner maps a user-facing miner name to a LocalMiner. The empty
// string selects the default, MinerPSM. Matching is case-insensitive, and
// every valid LocalMiner's String() form is accepted (as are the paper's
// figure labels "psm+index" for the indexed default).
func ParseLocalMiner(s string) (LocalMiner, error) {
	switch strings.ToLower(s) {
	case "", "psm", "psm+index":
		return MinerPSM, nil
	case "psm-noindex", "psmnoindex":
		return MinerPSMNoIndex, nil
	case "bfs":
		return MinerBFS, nil
	case "dfs":
		return MinerDFS, nil
	}
	return 0, fmt.Errorf("lash: unknown miner %q (want psm, psm-noindex, bfs or dfs)", s)
}

// ParseRestriction maps a user-facing restriction name to a Restriction.
// The empty string and "none"/"all" select RestrictNone. Matching is
// case-insensitive.
func ParseRestriction(s string) (Restriction, error) {
	switch strings.ToLower(s) {
	case "", "none", "all":
		return RestrictNone, nil
	case "closed":
		return RestrictClosed, nil
	case "maximal", "max":
		return RestrictMaximal, nil
	}
	return 0, fmt.Errorf("lash: unknown restriction %q (want none, closed or maximal)", s)
}

// String returns the restriction's name.
func (r Restriction) String() string {
	switch r {
	case RestrictNone:
		return "none"
	case RestrictClosed:
		return "closed"
	case RestrictMaximal:
		return "maximal"
	}
	return fmt.Sprintf("Restriction(%d)", int(r))
}

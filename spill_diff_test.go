package lash_test

import (
	"fmt"
	"testing"

	"lash"
)

// TestSpillDifferential: a memory budget forced far below the shuffle's
// table size must leave the mined output byte-identical — same patterns,
// same supports, same order, same frequent items and partition counters —
// across randomized databases and every algorithm, while actually spilling
// (asserted via the spill counters). This is the end-to-end guarantee the
// external-memory mode rests on.
func TestSpillDifferential(t *testing.T) {
	algorithms := []lash.Algorithm{
		lash.AlgorithmLASH,
		lash.AlgorithmLASHFlat,
		lash.AlgorithmMGFSM,
		lash.AlgorithmNaive,
		lash.AlgorithmSemiNaive,
	}
	for seed := int64(1); seed <= 3; seed++ {
		db := genDB(t, 400, seed)
		for _, alg := range algorithms {
			t.Run(fmt.Sprintf("seed%d/%s", seed, alg), func(t *testing.T) {
				opt := lash.Options{MinSupport: 8, MaxGap: 1, MaxLength: 3, Algorithm: alg}
				want, err := lash.Mine(db, opt)
				if err != nil {
					t.Fatal(err)
				}
				if want.Stats.SpillRuns != 0 || want.Stats.SpillBytes != 0 {
					t.Fatalf("in-memory run reported spills: %+v", want.Stats)
				}

				budgeted := opt
				budgeted.MemoryBudget = 4 << 10 // far below the shuffle's table size
				got, err := lash.Mine(db, budgeted)
				if err != nil {
					t.Fatal(err)
				}
				if got.Stats.SpillRuns == 0 || got.Stats.SpillBytes == 0 {
					t.Fatalf("budgeted run did not spill (runs=%d bytes=%d)",
						got.Stats.SpillRuns, got.Stats.SpillBytes)
				}

				assertSamePatterns(t, "Patterns", got.Patterns, want.Patterns)
				assertSamePatterns(t, "FrequentItems", got.FrequentItems, want.FrequentItems)
				if got.NumPartitions != want.NumPartitions {
					t.Errorf("NumPartitions = %d, want %d", got.NumPartitions, want.NumPartitions)
				}
				if got.Explored != want.Explored {
					t.Errorf("Explored = %d, want %d", got.Explored, want.Explored)
				}
			})
		}
	}
}

// TestSpillStream: the budgeted path also composes with streaming delivery.
func TestSpillStream(t *testing.T) {
	db := genDB(t, 400, 5)
	opt := lash.Options{MinSupport: 8, MaxGap: 1, MaxLength: 3, MemoryBudget: 4 << 10}
	want, err := lash.Mine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []lash.Pattern
	res, err := lash.Stream(t.Context(), db, opt, func(p lash.Pattern) error {
		streamed = append(streamed, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpillRuns == 0 {
		t.Fatal("streamed budgeted run did not spill")
	}
	wantSet, gotSet := patternSet(t, want.Patterns), patternSet(t, streamed)
	if len(wantSet) != len(gotSet) {
		t.Fatalf("streamed %d distinct patterns, Mine produced %d", len(gotSet), len(wantSet))
	}
	for k, n := range wantSet {
		if gotSet[k] != n {
			t.Errorf("pattern %q: streamed %d, mined %d", k, gotSet[k], n)
		}
	}
}

func assertSamePatterns(t *testing.T, what string, got, want []lash.Pattern) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i].Support != want[i].Support || len(got[i].Items) != len(want[i].Items) {
			t.Fatalf("%s[%d] = %v, want %v", what, i, got[i], want[i])
		}
		for j := range want[i].Items {
			if got[i].Items[j] != want[i].Items[j] {
				t.Fatalf("%s[%d] = %v, want %v", what, i, got[i], want[i])
			}
		}
	}
}

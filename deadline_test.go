package lash_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"lash"
)

// TestDeadlineExceededLatency: a run that outlives Options.Deadline must
// fail within well under a second of the deadline firing, with both
// lash.ErrDeadlineExceeded and context.DeadlineExceeded matchable — the
// deadline analogue of the cancellation-latency guarantee.
func TestDeadlineExceededLatency(t *testing.T) {
	db := genDB(t, 50000, 7)
	opt := lash.Options{MinSupport: 2, MaxGap: 2, MaxLength: 5, Deadline: 150 * time.Millisecond}
	begin := time.Now()
	_, err := lash.Mine(db, opt)
	elapsed := time.Since(begin)
	if err == nil {
		// A machine fast enough to mine 50k sequences at these settings in
		// 150ms would make the test vacuous, not wrong.
		t.Skip("run finished before the deadline; nothing to assert")
	}
	if !errors.Is(err, lash.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want lash.ErrDeadlineExceeded in chain", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if latency := elapsed - opt.Deadline; latency > time.Second {
		t.Errorf("run returned %v after its deadline, want < 1s", latency)
	}
}

// TestDeadlinePreExpired: a deadline that fires before mining starts fails
// the run immediately — no result, no patterns, no partial work.
func TestDeadlinePreExpired(t *testing.T) {
	db := genDB(t, 200, 1)
	begin := time.Now()
	res, err := lash.Mine(db, lash.Options{
		MinSupport: 5, MaxGap: 1, MaxLength: 3, Deadline: time.Nanosecond,
	})
	if err == nil || !errors.Is(err, lash.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want lash.ErrDeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("pre-expired run returned a result: %+v", res)
	}
	if elapsed := time.Since(begin); elapsed > time.Second {
		t.Errorf("pre-expired run took %v to fail, want fast rejection", elapsed)
	}
}

// TestDeadlineGenerousNoEffect: a deadline a finished run never reached
// changes nothing — same output as the unbounded run, and the same cache
// key (deadlines are canonicalized away).
func TestDeadlineGenerousNoEffect(t *testing.T) {
	db := genDB(t, 200, 1)
	opt := lash.Options{MinSupport: 5, MaxGap: 1, MaxLength: 3}
	want, err := lash.Mine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	bounded := opt
	bounded.Deadline = time.Hour
	got, err := lash.Mine(db, bounded)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePatterns(t, "Patterns", got.Patterns, want.Patterns)
	if got.Explored != want.Explored {
		t.Errorf("Explored = %d, want %d", got.Explored, want.Explored)
	}
	if opt.CacheKey() != bounded.CacheKey() {
		t.Errorf("deadline leaked into the cache key: %q vs %q", bounded.CacheKey(), opt.CacheKey())
	}
}

// TestDeadlineValidation: negative robustness knobs are rejected up front.
func TestDeadlineValidation(t *testing.T) {
	base := lash.Options{MinSupport: 2, MaxGap: 1, MaxLength: 3}
	neg := base
	neg.Deadline = -time.Second
	if err := neg.Validate(); err == nil {
		t.Error("negative Deadline validated")
	}
	att := base
	att.MaxAttempts = -1
	if err := att.Validate(); err == nil {
		t.Error("negative MaxAttempts validated")
	}
}

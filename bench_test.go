// Benchmarks regenerating every table and figure of the LASH paper's
// evaluation at the tiny scale (see internal/experiments for the full
// harness and EXPERIMENTS.md for paper-vs-measured discussion), plus
// micro-benchmarks of the core building blocks.
//
// Run: go test -bench=. -benchmem
package lash_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"lash"

	"lash/internal/baseline"
	"lash/internal/core"
	"lash/internal/datagen"
	"lash/internal/experiments"
	"lash/internal/flist"
	"lash/internal/gsm"
	"lash/internal/mapreduce"
	"lash/internal/miner"
	"lash/internal/obs"
	"lash/internal/rewrite"
	"lash/internal/seqenc"
	"lash/internal/stats"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	nytP      *gsm.Database
	nytLP     *gsm.Database
	nytCLP    *gsm.Database
	amznH8    *gsm.Database
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.Tiny)
		var err error
		if nytP, err = benchCtx.TextDB(datagen.HierarchyP); err != nil {
			panic(err)
		}
		if nytLP, err = benchCtx.TextDB(datagen.HierarchyLP); err != nil {
			panic(err)
		}
		if nytCLP, err = benchCtx.TextDB(datagen.HierarchyCLP); err != nil {
			panic(err)
		}
		if amznH8, err = benchCtx.MarketDB(8); err != nil {
			panic(err)
		}
	})
	b.ResetTimer()
}

func benchMR() mapreduce.Config {
	return mapreduce.Config{MapTasks: 16, ReduceTasks: 16}
}

func mineOrFatal(b *testing.B, db *gsm.Database, opt core.Options) *core.Result {
	b.Helper()
	b.ReportAllocs()
	res, err := core.Mine(context.Background(), db, opt)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- Tables 1 & 2 ----------------------------------------------------------

func BenchmarkTable1Characteristics(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = datagen.Characteristics(nytCLP)
		_ = datagen.Characteristics(amznH8)
	}
}

func BenchmarkTable2Hierarchies(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = nytCLP.Forest.ComputeStats()
		_ = amznH8.Forest.ComputeStats()
	}
}

// --- Fig. 4(a,b): distributed algorithm comparison -------------------------

func fig4Params() gsm.Params {
	return gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 0, Lambda: 3}
}

func BenchmarkFig4aNaive(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.MineNaive(context.Background(), nytP, baseline.Options{Params: fig4Params(), MR: benchMR()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aSemiNaive(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.MineSemiNaive(context.Background(), nytP, baseline.Options{Params: fig4Params(), MR: benchMR()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aLASH(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		mineOrFatal(b, nytP, core.Options{Params: fig4Params(), MR: benchMR()})
	}
}

// BenchmarkObsOverhead is BenchmarkFig4aLASH with full observability
// attached — span tracing plus registered pipeline metrics — sharing one
// tracer and registry across iterations like a long-lived server would.
// The acceptance bar (BENCH_PR6.json vs BenchmarkFig4aLASH) is ns/op
// within 2% and no extra allocs/op: the hot-path handles are 1–2 atomics
// and the span ring is preallocated, so instrumentation must be free at
// mining granularity.
func BenchmarkObsOverhead(b *testing.B) {
	benchSetup(b)
	o := &obs.Run{
		Tracer:  obs.NewTracer(0),
		Metrics: obs.NewPipelineMetrics(obs.NewRegistry()),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr := benchMR()
		mr.Obs = o
		mineOrFatal(b, nytP, core.Options{Params: fig4Params(), MR: mr})
	}
}

func BenchmarkFig4bMapOutputBytes(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	var lashBytes, naiveBytes int64
	for i := 0; i < b.N; i++ {
		res := mineOrFatal(b, nytP, core.Options{Params: fig4Params(), MR: benchMR()})
		lashBytes = res.Jobs.Mine.MapOutputBytes
		nv, err := baseline.MineNaive(context.Background(), nytP, baseline.Options{Params: fig4Params(), MR: benchMR()})
		if err != nil {
			b.Fatal(err)
		}
		naiveBytes = nv.Jobs.Mine.MapOutputBytes
	}
	b.ReportMetric(float64(lashBytes), "LASH-bytes")
	b.ReportMetric(float64(naiveBytes), "naive-bytes")
}

// --- Fig. 4(c,d): local miners ---------------------------------------------

func fig4cParams() gsm.Params {
	return gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 0, Lambda: 5}
}

func benchMinerKind(b *testing.B, kind miner.Kind) {
	benchSetup(b)
	var explored, output int64
	for i := 0; i < b.N; i++ {
		res := mineOrFatal(b, nytLP, core.Options{Params: fig4cParams(), Miner: kind, MR: benchMR()})
		explored, output = res.Miner.Explored, res.Miner.Output
	}
	if output > 0 {
		b.ReportMetric(float64(explored)/float64(output), "cands/output")
	}
}

func BenchmarkFig4cBFS(b *testing.B)      { benchMinerKind(b, miner.KindBFS) }
func BenchmarkFig4cDFS(b *testing.B)      { benchMinerKind(b, miner.KindDFS) }
func BenchmarkFig4cPSM(b *testing.B)      { benchMinerKind(b, miner.KindPSMNoIndex) }
func BenchmarkFig4dPSMIndex(b *testing.B) { benchMinerKind(b, miner.KindPSM) }

// --- Fig. 4(e): no hierarchies ----------------------------------------------

func BenchmarkFig4eMGFSM(b *testing.B) {
	benchSetup(b)
	p := gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 1, Lambda: 5}
	for i := 0; i < b.N; i++ {
		mineOrFatal(b, nytCLP, core.Options{Params: p, Flat: true, Miner: miner.KindBFS, MR: benchMR()})
	}
}

func BenchmarkFig4eLASHFlat(b *testing.B) {
	benchSetup(b)
	p := gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 1, Lambda: 5}
	for i := 0; i < b.N; i++ {
		mineOrFatal(b, nytCLP, core.Options{Params: p, Flat: true, Miner: miner.KindPSM, MR: benchMR()})
	}
}

// --- Fig. 5: parameter effects ----------------------------------------------

func BenchmarkFig5aSupport(b *testing.B) {
	benchSetup(b)
	for _, sigma := range []int64{experiments.Tiny.SigmaXLo, experiments.Tiny.SigmaLo, experiments.Tiny.SigmaHi} {
		b.Run(fmtI64(sigma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mineOrFatal(b, amznH8, core.Options{Params: gsm.Params{Sigma: sigma, Gamma: 1, Lambda: 5}, MR: benchMR()})
			}
		})
	}
}

func BenchmarkFig5bGap(b *testing.B) {
	benchSetup(b)
	for gamma := 0; gamma <= 3; gamma++ {
		b.Run(fmtI64(int64(gamma)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mineOrFatal(b, amznH8, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: gamma, Lambda: 5}, MR: benchMR()})
			}
		})
	}
}

func BenchmarkFig5cLength(b *testing.B) {
	benchSetup(b)
	for lambda := 3; lambda <= 7; lambda += 2 {
		b.Run(fmtI64(int64(lambda)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mineOrFatal(b, amznH8, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 1, Lambda: lambda}, MR: benchMR()})
			}
		})
	}
}

func BenchmarkFig5dOutput(b *testing.B) {
	benchSetup(b)
	var out int
	for i := 0; i < b.N; i++ {
		res := mineOrFatal(b, amznH8, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 1, Lambda: 5}, MR: benchMR()})
		out = len(res.Patterns)
	}
	b.ReportMetric(float64(out), "patterns")
}

func BenchmarkFig5eHierarchyDepth(b *testing.B) {
	benchSetup(b)
	for _, lv := range datagen.MarketLevels {
		db, err := benchCtx.MarketDB(lv)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmtI64(int64(lv)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mineOrFatal(b, db, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 2, Lambda: 5}, MR: benchMR()})
			}
		})
	}
}

func BenchmarkFig5fHierarchyType(b *testing.B) {
	benchSetup(b)
	for _, v := range datagen.TextHierarchies {
		db, err := benchCtx.TextDB(v)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mineOrFatal(b, db, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 0, Lambda: 5}, MR: benchMR()})
			}
		})
	}
}

// --- Fig. 6: scalability ------------------------------------------------------

func BenchmarkFig6aDataScale(b *testing.B) {
	benchSetup(b)
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		db := datagen.Sample(nytCLP, frac)
		b.Run(fmtI64(int64(frac*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mineOrFatal(b, db, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 0, Lambda: 5}, MR: benchMR()})
			}
		})
	}
}

func BenchmarkFig6bStrongScaling(b *testing.B) {
	benchSetup(b)
	for _, m := range []int{2, 4, 8} {
		b.Run(fmtI64(int64(m)), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				mr := benchMR()
				mr.Cluster = mapreduce.ClusterSpec{Machines: m, SlotsPerMachine: 8}
				res := mineOrFatal(b, nytCLP, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 0, Lambda: 5}, MR: mr})
				sim = res.Jobs.Mine.Sim.Total().Seconds()
			}
			b.ReportMetric(sim*1000, "sim-ms")
		})
	}
}

func BenchmarkFig6cWeakScaling(b *testing.B) {
	benchSetup(b)
	for _, step := range []struct {
		m    int
		frac float64
	}{{2, 0.25}, {4, 0.5}, {8, 1.0}} {
		db := datagen.Sample(nytCLP, step.frac)
		b.Run(fmtI64(int64(step.m)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mr := benchMR()
				mr.Cluster = mapreduce.ClusterSpec{Machines: step.m, SlotsPerMachine: 8}
				mineOrFatal(b, db, core.Options{Params: gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 0, Lambda: 5}, MR: mr})
			}
		})
	}
}

// --- Table 3 -----------------------------------------------------------------

func BenchmarkTable3OutputStats(b *testing.B) {
	benchSetup(b)
	p := gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 0, Lambda: 5}
	mined := mineOrFatal(b, nytLP, core.Options{Params: p, MR: benchMR()})
	flat := mineOrFatal(b, nytLP, core.Options{Params: p, Flat: true, MR: benchMR()})
	b.ResetTimer()
	var o stats.Output
	for i := 0; i < b.N; i++ {
		o = stats.Compute(nytLP.Forest, mined.Patterns, flat.Patterns)
	}
	b.ReportMetric(o.NonTrivialPct(), "nontrivial-%")
}

// --- ablation: rewrite modes (§4 discussion; DESIGN.md) -----------------------

func benchRewriteMode(b *testing.B, mode rewrite.Mode) {
	benchSetup(b)
	p := gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 1, Lambda: 5}
	var bytes int64
	for i := 0; i < b.N; i++ {
		res := mineOrFatal(b, nytLP, core.Options{Params: p, Rewrites: mode, MR: benchMR()})
		bytes = res.Jobs.Mine.MapOutputBytes
	}
	b.ReportMetric(float64(bytes), "shuffle-bytes")
}

func BenchmarkAblationRewritesNone(b *testing.B) { benchRewriteMode(b, rewrite.ModeNone) }
func BenchmarkAblationRewritesGeneralizeOnly(b *testing.B) {
	benchRewriteMode(b, rewrite.ModeGeneralizeOnly)
}
func BenchmarkAblationRewritesFull(b *testing.B) { benchRewriteMode(b, rewrite.ModeFull) }

// --- micro-benchmarks ----------------------------------------------------------

func BenchmarkMicroRewrite(b *testing.B) {
	benchSetup(b)
	fl, err := flist.BuildFromDB(nytCLP, experiments.Tiny.SigmaLo)
	if err != nil {
		b.Fatal(err)
	}
	rw := rewrite.NewRewriter(fl, 1, 5)
	var pivots []flist.Rank
	var buf []flist.Rank
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := nytCLP.Seqs[i%len(nytCLP.Seqs)]
		pivots = fl.PivotRanks(pivots[:0], t)
		for _, pv := range pivots {
			buf = rw.Rewrite(buf[:0], t, pv)
		}
	}
}

func BenchmarkMicroFList(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		_ = flist.ComputeFrequencies(nytCLP)
	}
}

func BenchmarkMicroEncoding(b *testing.B) {
	benchSetup(b)
	fl, err := flist.BuildFromDB(nytCLP, experiments.Tiny.SigmaLo)
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([][]flist.Rank, 0, 256)
	for _, t := range nytCLP.Seqs[:256] {
		var rs []flist.Rank
		for _, w := range t {
			rs = append(rs, fl.FrequentRank(w))
		}
		seqs = append(seqs, rs)
	}
	b.ResetTimer()
	var buf []byte
	var dec []flist.Rank
	for i := 0; i < b.N; i++ {
		s := seqs[i%len(seqs)]
		buf = seqenc.AppendSeq(buf[:0], s)
		dec, _ = seqenc.DecodeSeq(dec[:0], buf)
	}
	_ = dec
}

func BenchmarkMicroSubseqTest(b *testing.B) {
	benchSetup(b)
	pat := gsm.Sequence{nytCLP.Seqs[0][0], nytCLP.Seqs[0][1]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := nytCLP.Seqs[i%len(nytCLP.Seqs)]
		gsm.IsGenSubseq(nytCLP.Forest, pat, t, 1)
	}
}

func fmtI64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// --- Spillable shuffle (PR 5) ----------------------------------------------
//
// The external-memory pair: the same mining run with the shuffle held in
// memory and with a MemoryBudget forced to a quarter of the shuffle's table
// volume, so the corpus is ≥ 4× the configured budget (reported as the
// shuffle/budget metric). The acceptance bar is Budgeted within 2× of
// InMemory wall time.

var (
	spillOnce        sync.Once
	spillBudgetBytes int64 // shuffle bytes / 4, measured once
)

func spillParams() gsm.Params {
	return gsm.Params{Sigma: experiments.Tiny.SigmaLo, Gamma: 1, Lambda: 5}
}

func spillSetup(b *testing.B) int64 {
	benchSetup(b)
	spillOnce.Do(func() {
		res, err := core.Mine(context.Background(), nytCLP, core.Options{Params: spillParams(), MR: benchMR()})
		if err != nil {
			panic(err)
		}
		spillBudgetBytes = res.Jobs.Mine.MapOutputBytes / 4
		if spillBudgetBytes < 1 {
			spillBudgetBytes = 1
		}
	})
	b.ResetTimer()
	return spillBudgetBytes
}

func BenchmarkSpillInMemory(b *testing.B) {
	spillSetup(b)
	for i := 0; i < b.N; i++ {
		mineOrFatal(b, nytCLP, core.Options{Params: spillParams(), MR: benchMR()})
	}
}

func BenchmarkSpillBudgeted(b *testing.B) {
	budget := spillSetup(b)
	var runs, spilled, shuffled int64
	for i := 0; i < b.N; i++ {
		mr := benchMR()
		mr.MemoryBudget = budget
		res := mineOrFatal(b, nytCLP, core.Options{Params: spillParams(), MR: mr})
		runs, spilled, shuffled = res.Jobs.Mine.SpillRuns, res.Jobs.Mine.SpillBytes, res.Jobs.Mine.MapOutputBytes
	}
	if runs == 0 {
		b.Fatal("budgeted benchmark did not spill")
	}
	b.ReportMetric(float64(runs), "spill-runs")
	b.ReportMetric(float64(spilled), "spill-bytes")
	b.ReportMetric(float64(shuffled)/float64(budget), "shuffle/budget")
}

// --- Live corpora: delta mining --------------------------------------------

// deltaBench holds the one-time setup for BenchmarkDeltaMine: a
// 100 000-sequence corpus, a mined v1 state, and a 1% append (1 000
// sequences of a fresh ten-word topic, so the new vocabulary is frequent
// and forces some real delta mining while every old partition stays
// reusable). The cold mine of v2 is timed once here and reported by the
// benchmark as the reference the delta run is gated against.
var deltaBench struct {
	once sync.Once
	v2   *lash.Database
	opt  lash.Options
	cold time.Duration
	err  error
}

func deltaBenchSetup() {
	const (
		sentences = 100_000
		appendN   = sentences / 100
		topics    = 10
	)
	base, err := lash.GenerateTextDatabase(lash.TextConfig{Sentences: sentences, Lemmas: 2000, Seed: 11})
	if err != nil {
		deltaBench.err = err
		return
	}
	opt := lash.Options{MinSupport: 200, MaxGap: 1, MaxLength: 4, Capture: true}
	v1, err := lash.Mine(base, opt)
	if err != nil {
		deltaBench.err = err
		return
	}
	fb := lash.NewDatabaseBuilder()
	for i := 0; i < appendN; i++ {
		fb.AddSequence(
			fmt.Sprintf("topic_%d", i%topics),
			fmt.Sprintf("topic_%d", (i+1)%topics),
			fmt.Sprintf("topic_%d", (i+3)%topics),
			fmt.Sprintf("topic_%d", (i+7)%topics),
		)
	}
	frag, err := fb.Build()
	if err != nil {
		deltaBench.err = err
		return
	}
	v2, err := base.Append(frag)
	if err != nil {
		deltaBench.err = err
		return
	}
	coldOpt := lash.Options{MinSupport: 200, MaxGap: 1, MaxLength: 4}
	start := time.Now()
	if _, err := lash.Mine(v2, coldOpt); err != nil {
		deltaBench.err = err
		return
	}
	deltaBench.cold = time.Since(start)
	coldOpt.Resume = v1.State
	deltaBench.v2, deltaBench.opt = v2, coldOpt
}

// BenchmarkDeltaMine gates the PR10 acceptance bar in the benchmark
// itself: re-mining a 1% append through a captured MineState must reuse
// partitions and finish within 50% of the cold mine of the same version
// (measured ~2-3% in practice; the generous budget absorbs runner noise).
func BenchmarkDeltaMine(b *testing.B) {
	deltaBench.once.Do(deltaBenchSetup)
	if deltaBench.err != nil {
		b.Fatal(deltaBench.err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lash.Mine(deltaBench.v2, deltaBench.opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.DeltaPartitionsReused == 0 {
			b.Fatal("delta mine reused no partitions")
		}
	}
	b.StopTimer()
	perOp := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(deltaBench.cold.Nanoseconds()), "cold-ns/op")
	pct := float64(perOp) / float64(deltaBench.cold) * 100
	b.ReportMetric(pct, "delta-vs-cold-%")
	if pct > 50 {
		b.Fatalf("delta mine took %.1f%% of the cold mine (%v vs %v); budget is 50%%",
			pct, perOp, deltaBench.cold)
	}
}

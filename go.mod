module lash

go 1.24
